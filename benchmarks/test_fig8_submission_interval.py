"""Fig 8 — impact of workflow submission intervals on execution time.

Five Montage workflows on a single c3.8xlarge node, submitted at
intervals from 0 (batch) to 150 s (paper sweeps 0..150; optimum ~100 s
with ~34% speed-up over batch).  Incremental submission staggers the
workflows' stages so that they do not demand the same resource at the
same time.

At reduced scale the workflow is shorter, so the sweep uses intervals
proportional to the single-workflow makespan; the paper's 0..150 s grid
is used at full scale.
"""

import numpy as np
from conftest import FULL_SCALE, emit

from repro.cloud import ClusterSpec
from repro.engines import PullEngine
from repro.monitor import format_series
from repro.workflow import Ensemble

N_WORKFLOWS = 5


def intervals_for(template) -> list:
    if FULL_SCALE:
        # The paper sweeps 0..150 s; our simulator's optimum sits a bit
        # further out, so extra points past 150 s expose the U-turn.
        return [0, 25, 50, 75, 100, 125, 150, 250, 400, 600]
    # Scale the paper's grid by the workload: 0..150 s was ~0..25% of the
    # single-workflow makespan (~600 s) at paper scale; the reduced-scale
    # workflow has a relatively longer blocking stage, so the grid extends
    # to 40% to cover it.
    spec = ClusterSpec("c3.8xlarge", 1, filesystem="local")
    base = PullEngine(spec).run(Ensemble([template])).makespan
    return [round(base * f) for f in (0.0, 0.07, 0.13, 0.20, 0.27, 0.33, 0.40)]


def run_fig8(template):
    spec = ClusterSpec("c3.8xlarge", 1, filesystem="local")
    sweep = []
    for interval in intervals_for(template):
        ensemble = Ensemble.replicated(template, N_WORKFLOWS, interval=interval)
        result = PullEngine(spec).run(ensemble)
        sweep.append((interval, result.makespan))
    return sweep


def test_fig8_submission_intervals(benchmark, template, scale_note):
    sweep = benchmark.pedantic(run_fig8, args=(template,), rounds=1, iterations=1)
    intervals = [s for s, _ in sweep]
    times = [t for _, t in sweep]
    batch_time = times[0]
    best_interval, best_time = min(sweep, key=lambda s: s[1])
    speedup = (batch_time - best_time) / batch_time
    text = (
        scale_note
        + "\n"
        + format_series("fig8", intervals, times, "s")
        + f"\nbest interval: {best_interval} s -> {best_time:.0f} s "
        f"({100 * speedup:.0f}% faster than batch; paper: ~34% at 100 s)"
    )
    emit("fig8_submission_interval", text)

    # An intermediate interval beats batch submission...
    assert best_interval > 0
    # The paper reports ~34% at the optimum; our simulator reproduces the
    # direction and the U shape with a smaller magnitude (the model's
    # batch-submission penalty — cache thrash + blocking-stage alignment —
    # is conservative), so the band asserts the existence of a real win.
    assert speedup > 0.02
    # ...and the curve turns back up for very large intervals (the tail
    # serialises the ensemble), giving the paper's U shape.
    assert times[-1] > best_time
