"""Fig 4 — resource consumption of ten Montage workflows on a single
node, for c3.8xlarge / r3.8xlarge / i2.8xlarge.

Paper observations, checked here:

* (a) stage 1 is CPU-bound: utilisation hits ~100% on every type and the
  stage takes about the same time on all three despite their very
  different write throughput (the write-back cache hides device speed);
* (b) disk writes occur in intermittent bursts at full device capacity;
* (c) stage 3 is I/O-bound and completes in the disk-speed order
  i2 <= r3 <= c3, which also orders the total makespans.
"""

import numpy as np
from conftest import emit

from repro.cloud import ClusterSpec
from repro.engines import PullEngine, RunConfig
from repro.monitor import node_metrics, summary_table
from repro.monitor.timeline import stage_windows
from repro.workflow import Ensemble

TYPES = ("c3.8xlarge", "r3.8xlarge", "i2.8xlarge")


def run_fig4(template):
    results = {}
    for itype in TYPES:
        spec = ClusterSpec(itype, 1, filesystem="local")
        ensemble = Ensemble.replicated(template, 10)
        results[itype] = PullEngine(spec).run(ensemble)
    return results


def test_fig4_resource_patterns(benchmark, template, scale_note):
    results = benchmark.pedantic(run_fig4, args=(template,), rounds=1, iterations=1)
    rows = []
    stage1_end = {}
    for itype in TYPES:
        result = results[itype]
        m = node_metrics(result, 0)
        # First blocking window over the ten workflows approximates the
        # stage-1/stage-2 boundary of the batch.
        windows = stage_windows(result)
        s1_end = min(start for start, _ in windows.values())
        stage1_end[itype] = s1_end
        rows.append(
            {
                "instance": itype,
                "makespan_s": round(result.makespan, 1),
                "stage1_end_s": round(s1_end, 1),
                "peak_cpu_%": round(m.peak_cpu_util, 1),
                "peak_write_MB/s": round(float(m.disk_write.max()), 1),
                "reads_GB": round(result.total_disk_read_bytes() / 1e9, 1),
                "writes_GB": round(result.total_disk_write_bytes() / 1e9, 1),
            }
        )
    emit("fig4_profiles", scale_note + "\n" + summary_table(rows))

    makespans = {itype: results[itype].makespan for itype in TYPES}
    # (c) stage-3 I/O sensitivity orders the makespans: i2 <= r3 <= c3.
    assert makespans["i2.8xlarge"] <= makespans["r3.8xlarge"] <= makespans["c3.8xlarge"]
    # (a) stage 1 is CPU-bound: ~100% peak CPU everywhere, and stage-1
    # duration varies little across types despite 800 vs 3800 MB/s write.
    for itype in TYPES:
        m = node_metrics(results[itype], 0)
        assert m.peak_cpu_util > 95.0
    s1 = [stage1_end[t] for t in TYPES]
    assert max(s1) / min(s1) < 1.25
    # (b) disk writes are intermittent bursts at (near) device speed:
    # the peak sample approaches the sequential-write rate and towers
    # over the mean (the OS caches writes and flushes them in batches).
    for itype in TYPES:
        m = node_metrics(results[itype], 0)
        seq_write = results[itype].cluster.nodes[0].itype.disk.seq_write / 1e6
        peak = float(m.disk_write.max())
        mean = float(m.disk_write.mean())
        assert peak > 0.4 * seq_write
        assert peak > 2.5 * mean
