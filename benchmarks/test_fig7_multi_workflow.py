"""Fig 7 — one to five Montage workflows on a single c3.8xlarge:
total execution time / total CPU time / total disk writes for DEWE v2 and
Pegasus.

Paper observations, checked here:

* all three quantities grow (roughly linearly) with the number of
  workflows for both engines;
* Pegasus consumes far more of everything;
* the headline: DEWE v2 runs *five* workflows in about the time Pegasus
  needs for *one* ("80% speed-up when running multiple workflows in
  parallel") — asserted as a band on DEWE(5)/Pegasus(1).
"""

import numpy as np
from conftest import emit

from repro.cloud import ClusterSpec
from repro.engines import PullEngine, SchedulingEngine
from repro.monitor import format_series
from repro.workflow import Ensemble

COUNTS = (1, 2, 3, 4, 5)


def run_fig7(template):
    spec = ClusterSpec("c3.8xlarge", 1, filesystem="local")
    data = {"dewe-v2": [], "pegasus": []}
    for engine_name, Engine in (("dewe-v2", PullEngine), ("pegasus", SchedulingEngine)):
        for w in COUNTS:
            result = Engine(spec).run(Ensemble.replicated(template, w))
            data[engine_name].append(
                (
                    result.makespan,
                    result.total_cpu_seconds(),
                    result.total_disk_write_bytes() / 1e9,
                )
            )
    return data


def test_fig7_multiple_workflows(benchmark, template, scale_note):
    data = benchmark.pedantic(run_fig7, args=(template,), rounds=1, iterations=1)
    lines = [scale_note]
    for engine in ("dewe-v2", "pegasus"):
        times = [d[0] for d in data[engine]]
        cpu = [d[1] for d in data[engine]]
        writes = [d[2] for d in data[engine]]
        lines.append(format_series(f"fig7a {engine}", COUNTS, times, "s"))
        lines.append(format_series(f"fig7b {engine}", COUNTS, cpu, "vCPU-s"))
        lines.append(format_series(f"fig7c {engine}", COUNTS, writes, "GB"))
    dewe5 = data["dewe-v2"][-1][0]
    pegasus1 = data["pegasus"][0][0]
    lines.append(
        f"DEWE v2 with 5 workflows: {dewe5:.0f} s vs Pegasus with 1: "
        f"{pegasus1:.0f} s (paper: approximately equal)"
    )
    emit("fig7_multi_workflow", "\n".join(lines))

    counts = np.array(COUNTS, dtype=float)
    for engine in ("dewe-v2", "pegasus"):
        for idx, label in ((0, "time"), (1, "cpu"), (2, "writes")):
            series = np.array([d[idx] for d in data[engine]])
            assert np.all(np.diff(series) > 0), (engine, label)
            corr = np.corrcoef(counts, series)[0, 1]
            assert corr > 0.97, (engine, label)
    # Pegasus costs more across the board, increasingly so with workload.
    for i, _w in enumerate(COUNTS):
        assert data["pegasus"][i][0] > data["dewe-v2"][i][0]
        assert data["pegasus"][i][1] > data["dewe-v2"][i][1]
        assert data["pegasus"][i][2] > data["dewe-v2"][i][2]
    # The headline claim: five DEWE workflows ~ one Pegasus workflow.
    # (Our substrate reproduces the direction with a wider band.)
    assert dewe5 / pegasus1 < 1.8
