"""§V.A.3 — system robustness under worker-daemon failures.

Two experiments from the paper, plus the headline recovery properties:

1. single node: kill the (only) worker daemon mid-run, restart 5 s later
   — the workflow still completes;
2. two nodes, one worker daemon at a time: kill on node A, start on node
   B — execution fails over and completes.

And the timing observations:

* interruptions during **non-blocking** jobs (mProjectPP/mDiffFit fan)
  add roughly the interruption duration to the makespan — execution
  resumes as soon as the daemon is back, without waiting for timeouts;
* interruptions during **blocking** jobs (mConcatFit/mBgModel) add
  roughly the interrupted job's timeout — nothing else is eligible, so
  the master must wait the timeout out before resubmitting.
"""

from conftest import FULL_SCALE, emit

from repro.cloud import ClusterSpec
from repro.engines import PullEngine, RunConfig
from repro.faults import FaultAction, FaultSchedule
from repro.monitor import summary_table
from repro.monitor.timeline import stage_windows
from repro.workflow import Ensemble

DOWNTIME = 5.0
# The timeout must be short relative to the fan stage for the paper's
# "non-blocking interruptions cost only the downtime" effect: interrupted
# fan jobs are resubmitted while plenty of sibling work is still running,
# so their re-execution blends in.  60 s (a sensible paper-scale setting)
# scales down with the workload.
TIMEOUT = 60.0 if FULL_SCALE else 15.0


def run_robustness(template):
    # A private copy: blocking jobs get user-defined timeouts (paper
    # §III.B) long enough that a healthy run never triggers them, while
    # short fan jobs use the system-wide default.
    from repro.generators import montage_workflow

    from conftest import DEGREE

    template = montage_workflow(degree=DEGREE)
    for job in template:
        # Long-running aggregation jobs (mConcatFit/mBgModel/mAdd...)
        # would spuriously time out under the short default; give them
        # user-defined timeouts as the paper's §III.B allows.
        if job.runtime > TIMEOUT / 3:
            job.timeout = TIMEOUT + job.runtime

    spec = ClusterSpec("c3.8xlarge", 1, filesystem="local")
    cfg = RunConfig(default_timeout=TIMEOUT, timeout_check_interval=1.0)
    baseline = PullEngine(spec, config=cfg).run(Ensemble([template]))
    (s2_start, s2_end) = next(iter(stage_windows(baseline).values()))

    # Fault during the non-blocking stage-1 fan.
    t_fan = s2_start * 0.5
    fan_schedule = FaultSchedule(
        [FaultAction(t_fan, 0, "kill"), FaultAction(t_fan + DOWNTIME, 0, "restart")]
    )
    fan = PullEngine(spec, config=cfg, fault_schedule=fan_schedule).run(
        Ensemble([template])
    )

    # Fault during the blocking stage.
    t_block = (s2_start + s2_end) / 2
    block_schedule = FaultSchedule(
        [FaultAction(t_block, 0, "kill"), FaultAction(t_block + DOWNTIME, 0, "restart")]
    )
    blocking = PullEngine(spec, config=cfg, fault_schedule=block_schedule).run(
        Ensemble([template])
    )

    # Two-node failover (one worker daemon at a time).
    spec2 = ClusterSpec("c3.8xlarge", 2, filesystem="nfs-nton")
    base2 = PullEngine(spec2, config=cfg).run(Ensemble([template]))
    t_kill = base2.makespan * 0.5
    failover_schedule = FaultSchedule(
        [FaultAction(t_kill, 0, "kill"), FaultAction(t_kill + DOWNTIME, 1, "restart")],
        initially_down=(1,),
    )
    failover = PullEngine(spec2, config=cfg, fault_schedule=failover_schedule).run(
        Ensemble([template])
    )
    return baseline, fan, blocking, failover


def test_robustness_fault_injection(benchmark, template, scale_note):
    baseline, fan, blocking, failover = benchmark.pedantic(
        run_robustness, args=(template,), rounds=1, iterations=1
    )
    fan_delta = fan.makespan - baseline.makespan
    blocking_delta = blocking.makespan - baseline.makespan
    rows = [
        {
            "scenario": name,
            "makespan_s": round(r.makespan, 1),
            "delta_s": round(r.makespan - baseline.makespan, 1),
            "resubmissions": r.resubmissions,
            "jobs_executed": r.jobs_executed,
        }
        for name, r in (
            ("baseline", baseline),
            ("kill in fan stage", fan),
            ("kill in blocking stage", blocking),
            ("two-node failover", failover),
        )
    ]
    text = (
        scale_note
        + f"\ndowntime={DOWNTIME}s timeout={TIMEOUT}s\n"
        + summary_table(rows)
        + f"\nfan delta ~ downtime ({fan_delta:.1f} vs {DOWNTIME}); "
        f"blocking delta ~ timeout ({blocking_delta:.1f} vs >= {TIMEOUT * 0.5})"
    )
    emit("robustness", text)

    # A healthy run never triggers a timeout.
    assert baseline.resubmissions == 0
    # Completion despite interruptions (at-least-once execution).
    n = len(template)
    for result in (fan, blocking, failover):
        assert result.jobs_executed >= n
        assert len(result.workflow_spans) == 1

    # Non-blocking interruption costs about the downtime (generous band:
    # re-execution of the killed in-flight jobs adds a little on top).
    assert fan_delta < DOWNTIME + TIMEOUT * 0.75
    assert fan_delta >= DOWNTIME * 0.5
    # Blocking interruption must wait out the timeout.
    assert blocking_delta >= TIMEOUT * 0.5
    assert blocking.resubmissions >= 1
    assert blocking_delta > fan_delta
