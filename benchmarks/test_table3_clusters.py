"""Table III — cluster configurations designed by Equation 2.

With the paper's converged node performance indices (0.0015 / 0.0024 /
0.0026), W = 200 workflows and T = 3,300 s, the planner reproduces the
paper's cluster designs (the planner's ceil() differs from the paper's
round() by at most one node — it never undershoots the deadline), and the
control cluster i2.8xlarge B (10 nodes) prices out at roughly the same
hourly cost as the designed c3/r3 clusters.
"""

from conftest import emit

from repro.cloud import ClusterSpec, get_instance_type
from repro.monitor import summary_table
from repro.provision import plan_table

PAPER_TABLE3 = {
    # cluster: (nodes, vCPU, memory TB, storage TB, USD/hr)
    "c3.8xlarge": (40, 1280, 2.40, 25.6, 67.2),
    "r3.8xlarge": (25, 800, 6.10, 16.0, 70.0),
    "i2.8xlarge": (23, 768, 5.61, 147.2, 156.7),
    "i2.8xlarge B": (10, 320, 2.44, 64.0, 68.2),
}


def run_table3():
    plans = plan_table(workflows=200, deadline=3300.0)
    rows = []
    for plan in plans:
        spec = plan.spec
        rows.append(
            {
                "Cluster": spec.instance_type,
                "Nodes": spec.n_nodes,
                "vCPU": spec.total_vcpus,
                "Memory(TB)": round(spec.total_memory_gb / 1000, 2),
                "Storage(TB)": round(spec.total_storage_gb / 1000, 1),
                "Price(USD/hr)": round(spec.price_per_hour, 1),
                "Predicted(s)": round(plan.predicted_time, 0),
                "MeetsDeadline": plan.meets_deadline,
            }
        )
    control = ClusterSpec("i2.8xlarge", 10, name="i2.8xlarge B")
    rows.append(
        {
            "Cluster": "i2.8xlarge B",
            "Nodes": control.n_nodes,
            "vCPU": control.total_vcpus,
            "Memory(TB)": round(control.total_memory_gb / 1000, 2),
            "Storage(TB)": round(control.total_storage_gb / 1000, 1),
            "Price(USD/hr)": round(control.price_per_hour, 1),
            "Predicted(s)": "-",
            "MeetsDeadline": "-",
        }
    )
    return rows


def test_table3_cluster_configurations(benchmark):
    rows = benchmark.pedantic(run_table3, rounds=1, iterations=1)
    emit("table3_clusters", summary_table(rows))

    by_cluster = {r["Cluster"]: r for r in rows if r["Cluster"] != "i2.8xlarge B"}
    for name, (nodes, vcpu, mem_tb, storage_tb, price) in PAPER_TABLE3.items():
        if name == "i2.8xlarge B":
            continue
        row = by_cluster[name]
        # The planner's ceil() may add one node over the paper's round().
        assert nodes <= row["Nodes"] <= nodes + 1
        itype = get_instance_type(name)
        assert row["vCPU"] == row["Nodes"] * itype.vcpus
        # Hourly price follows directly; within one node of the paper.
        assert abs(row["Price(USD/hr)"] - price) <= itype.price_per_hour + 0.2
    # Every designed cluster is predicted to meet the 3,300 s deadline.
    assert all(r["MeetsDeadline"] is True for r in by_cluster.values())
    # The control cluster costs about as much per hour as c3/r3 (68.2 vs
    # 67.2/70.0 USD) — the paper chose 10 nodes for exactly that reason.
    control = next(r for r in rows if r["Cluster"] == "i2.8xlarge B")
    assert abs(control["Price(USD/hr)"] - 68.2) < 0.1
