"""Table I — EC2 instance types used in the evaluation.

Regenerates the table from the catalogue and checks the transcription
against the paper's values.
"""

from conftest import emit

from repro.cloud import INSTANCE_TYPES, get_instance_type
from repro.monitor import summary_table

PAPER_TABLE1 = {
    # model: (vCPU, memory GB, storage, network Gbps, USD/hour)
    "c3.8xlarge": (32, 60, (2, 320), 10, 1.68),
    "r3.8xlarge": (32, 244, (2, 320), 10, 2.80),
    "i2.8xlarge": (32, 244, (8, 800), 10, 6.82),
}


def render_table1() -> str:
    rows = []
    for name in ("c3.8xlarge", "r3.8xlarge", "i2.8xlarge"):
        t = get_instance_type(name)
        rows.append(
            {
                "Model": t.name,
                "vCPU": t.vcpus,
                "Memory(GB)": t.memory_gb,
                "Storage(GB)": f"{t.storage[0]} x {t.storage[1]}",
                "Network(Gbps)": t.network_gbps,
                "Price(USD/hr)": t.price_per_hour,
            }
        )
    return summary_table(rows)


def test_table1_instance_types(benchmark):
    table = benchmark.pedantic(render_table1, rounds=1, iterations=1)
    emit("table1_instances", table)
    for name, (vcpu, mem, storage, net, price) in PAPER_TABLE1.items():
        t = get_instance_type(name)
        assert t.vcpus == vcpu
        assert t.memory_gb == mem
        assert t.storage == storage
        assert t.network_gbps == net
        assert t.price_per_hour == price
    assert "m3.2xlarge" in INSTANCE_TYPES  # Fig 2's motivational instance
