"""Table II — RAID-0 disk I/O capacity of the instance types.

Regenerates the catalogue table and then *measures* the simulated disk:
a microbenchmark streams concurrent transfers through each instance
type's :class:`~repro.storage.disk.DiskArray` and checks the achieved
aggregate bandwidth equals the Table II capacity (the PS link must be
work-conserving at exactly the configured rate).
"""

import pytest
from conftest import emit

from repro.cloud import get_instance_type
from repro.monitor import summary_table
from repro.sim import Simulator
from repro.storage.disk import DiskArray

PAPER_TABLE2 = {
    # model: (seq read, seq write, rand read, rand write) in MB/s
    "c3.8xlarge": (250, 800, 400, 600),
    "r3.8xlarge": (350, 1000, 700, 800),
    "i2.8xlarge": (2200, 3800, 1800, 3600),
}


def measure_disk(name: str, n_streams: int = 16, nbytes: float = 1e9):
    """Aggregate read/write bandwidth of the simulated RAID-0 array."""
    sim = Simulator()
    disk = DiskArray(sim, get_instance_type(name).disk, name=name)
    done = []

    def stream(link):
        yield link.transfer(nbytes)
        done.append(sim.now)

    for _ in range(n_streams):
        sim.process(stream(disk.read))
    read_end = None
    sim.run()
    read_end = sim.now
    read_bw = n_streams * nbytes / read_end / 1e6

    sim2 = Simulator()
    disk2 = DiskArray(sim2, get_instance_type(name).disk, name=name)
    for _ in range(n_streams):
        sim2.process(stream(disk2.write))
    sim2.run()
    write_bw = n_streams * nbytes / sim2.now / 1e6
    return read_bw, write_bw


def run_table2():
    rows = []
    measured = {}
    for name, (sr, sw, rr, rw) in PAPER_TABLE2.items():
        read_bw, write_bw = measure_disk(name)
        measured[name] = (read_bw, write_bw)
        rows.append(
            {
                "Model": name,
                "SeqRead": sr,
                "SeqWrite": sw,
                "RandRead": rr,
                "RandWrite": rw,
                "MeasRead(MB/s)": round(read_bw, 1),
                "MeasWrite(MB/s)": round(write_bw, 1),
            }
        )
    return summary_table(rows), measured


def test_table2_disk_io_capacity(benchmark):
    table, measured = benchmark.pedantic(run_table2, rounds=1, iterations=1)
    emit("table2_disk_io", table)
    for name, (sr, sw, rr, rw) in PAPER_TABLE2.items():
        t = get_instance_type(name)
        assert t.disk.seq_read == sr * 1e6
        assert t.disk.seq_write == sw * 1e6
        assert t.disk.rand_read == rr * 1e6
        assert t.disk.rand_write == rw * 1e6
        # Simulated array delivers its configured capacity: the read
        # channel serves random-read bandwidth, the write channel
        # sequential-write bandwidth (write-back flushes are batched).
        read_bw, write_bw = measured[name]
        assert read_bw == pytest.approx(rr, rel=1e-3)
        assert write_bw == pytest.approx(sw, rel=1e-3)
