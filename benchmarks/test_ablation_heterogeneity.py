"""Ablation — the homogeneity assumption (paper §II/§III.A).

DEWE v2's pulling model deliberately ignores worker identity: "for
critical jobs, the computation cost remains the same regardless of the
worker node they run on" — true in a placement group of identical
instances, false on grid-style mixed hardware.  This ablation runs the
same ensemble on

* a homogeneous 4 x c3.8xlarge cluster, and
* a heterogeneous cluster mixing c3.8xlarge with slow-cored m3.2xlarge,

and shows that FCFS pulling lets single-threaded blocking jobs land on
slow cores, stretching the blocking window by up to the core-speed ratio
— the scheduling-era problem the cloud's homogeneity makes disappear.
"""

import pytest
from conftest import emit

from repro.cloud import ClusterSpec, get_instance_type
from repro.engines import PullEngine
from repro.monitor import summary_table
from repro.monitor.timeline import stage_windows
from repro.workflow import Ensemble

N_WORKFLOWS = 4


def run_ablation(template):
    ensemble = Ensemble.replicated(template, N_WORKFLOWS)
    homo = PullEngine(
        ClusterSpec("c3.8xlarge", 4, filesystem="nfs-nton")
    ).run(ensemble)
    hetero = PullEngine(
        ClusterSpec(
            "c3.8xlarge",
            4,
            filesystem="nfs-nton",
            node_types=("c3.8xlarge", "c3.8xlarge", "m3.2xlarge", "m3.2xlarge"),
        )
    ).run(ensemble)
    return homo, hetero


def blocking_stats(result):
    """Mean blocking-window length and worst blocking-job slowdown."""
    windows = stage_windows(result)
    lengths = [end - start for start, end in windows.values()]
    blocking = [
        r for r in result.records if r.task_type in ("mConcatFit", "mBgModel")
    ]
    slow_nodes = {
        i
        for i, node in enumerate(result.cluster.nodes)
        if node.itype.cpu_speed < 1.0
    }
    on_slow = sum(1 for r in blocking if r.node in slow_nodes)
    return sum(lengths) / len(lengths), on_slow, len(blocking)


def test_ablation_heterogeneity(benchmark, template, scale_note):
    homo, hetero = benchmark.pedantic(
        run_ablation, args=(template,), rounds=1, iterations=1
    )
    homo_window, _, _ = blocking_stats(homo)
    hetero_window, on_slow, total_blocking = blocking_stats(hetero)
    rows = [
        {
            "cluster": name,
            "makespan_s": round(r.makespan, 1),
            "mean_blocking_window_s": round(w, 1),
        }
        for name, r, w in (
            ("4 x c3.8xlarge (homogeneous)", homo, homo_window),
            ("2 x c3 + 2 x m3 (heterogeneous)", hetero, hetero_window),
        )
    ]
    speed_ratio = 1.0 / get_instance_type("m3.2xlarge").cpu_speed
    text = (
        scale_note
        + "\n"
        + summary_table(rows)
        + f"\nblocking jobs on slow nodes: {on_slow}/{total_blocking}; "
        f"m3 core-speed penalty = {speed_ratio:.2f}x"
    )
    emit("ablation_heterogeneity", text)

    # The mixed cluster is slower overall (it has less raw capacity)...
    assert hetero.makespan > homo.makespan
    # ...and the homogeneity premise visibly breaks: the same task type
    # costs ~the core-speed ratio more on the slow nodes.
    slow_nodes = {
        i
        for i, node in enumerate(hetero.cluster.nodes)
        if node.itype.cpu_speed < 1.0
    }
    fan_fast = [
        r.compute_time
        for r in hetero.records
        if r.task_type == "mProjectPP" and r.node not in slow_nodes
    ]
    fan_slow = [
        r.compute_time
        for r in hetero.records
        if r.task_type == "mProjectPP" and r.node in slow_nodes
    ]
    assert fan_fast and fan_slow  # FCFS spread the fan over all nodes
    observed_ratio = (sum(fan_slow) / len(fan_slow)) / (sum(fan_fast) / len(fan_fast))
    assert observed_ratio == pytest.approx(speed_ratio, rel=0.25)
    # When FCFS does hand a blocking job to a slow node (it cannot know
    # better), the blocking window stretches toward the speed penalty.
    if on_slow >= 1:
        assert hetero_window > homo_window * 1.1
        assert hetero_window < homo_window * (speed_ratio + 0.5)