"""Fig 9 — resource consumption patterns at submission intervals 0/50/100.

The paper shows the batch run's clear three-stage CPU pattern (with a
deep under-utilisation valley in stage 2) dissolving as the submission
interval grows: "different types of jobs from different workflows can be
executed in parallel, resulting in an increase in average CPU utilization
across the whole execution time".

Checked here: the average CPU utilisation rises with the submission
interval, the stage-2 valley fills up, and disk activity spreads out.
"""

import numpy as np
from conftest import FULL_SCALE, emit

from repro.cloud import ClusterSpec
from repro.engines import PullEngine
from repro.monitor import node_metrics, summary_table
from repro.workflow import Ensemble

N_WORKFLOWS = 5


def run_fig9(template):
    spec = ClusterSpec("c3.8xlarge", 1, filesystem="local")
    if FULL_SCALE:
        intervals = (0, 50, 100)
    else:
        base = PullEngine(spec).run(Ensemble([template])).makespan
        intervals = (0, round(base / 12), round(base / 6))
    out = {}
    for interval in intervals:
        ensemble = Ensemble.replicated(template, N_WORKFLOWS, interval=interval)
        out[interval] = PullEngine(spec).run(ensemble)
    return out


def test_fig9_interval_resource_patterns(benchmark, template, scale_note):
    results = benchmark.pedantic(run_fig9, args=(template,), rounds=1, iterations=1)
    rows = []
    stats = {}
    for interval, result in results.items():
        m = node_metrics(result, 0)
        # The stage-2 valley: how much of the run the node spends nearly
        # idle (below 25% utilisation — a handful of blocking jobs on a
        # 32-core node).  Batch submission aligns every workflow's
        # blocking window into one deep valley; staggering fills it.
        low_fraction = float(np.mean(m.cpu_util < 25.0))
        stats[interval] = (m.mean_cpu_util(), low_fraction)
        rows.append(
            {
                "interval_s": interval,
                "makespan_s": round(result.makespan, 1),
                "mean_cpu_%": round(m.mean_cpu_util(), 1),
                "low_util_fraction": round(low_fraction, 3),
                "peak_write_MB/s": round(float(m.disk_write.max()), 1),
            }
        )
    emit("fig9_interval_profiles", scale_note + "\n" + summary_table(rows))

    intervals = sorted(results)
    means = [stats[i][0] for i in intervals]
    low_fracs = [stats[i][1] for i in intervals]
    # Average CPU utilisation increases with the interval.
    assert means[0] < means[-1]
    # The three-stage pattern dissolves: the run spends (weakly) less
    # time nearly idle when submission is staggered.
    assert low_fracs[-1] <= low_fracs[0] + 1e-9
