"""Fig 10 — resource consumption of the large workflow ensemble on the
r3.8xlarge cluster: per-node patterns are identical, i.e. the pull model
spreads the load evenly with no scheduler at all.

The paper runs 200 x 6.0-degree workflows on 25 r3.8xlarge nodes over
MooseFS and shows three arbitrary nodes with indistinguishable CPU and
disk traces ("the workload is evenly distributed across the cluster; the
cluster behaves in a way that is similar to a supercomputer").

Checked here: across every node of the cluster, total compute seconds,
total device reads and total device writes all lie within a small band of
the mean (coefficient of variation), and the sampled CPU series of three
representative nodes correlate strongly.
"""

import numpy as np
from conftest import FULL_SCALE, LARGE_W, emit

from repro.cloud import ClusterSpec
from repro.engines import PullEngine, RunConfig
from repro.monitor import node_metrics, summary_table
from repro.workflow import Ensemble

N_NODES = 25 if FULL_SCALE else 10


def run_fig10(template):
    spec = ClusterSpec("r3.8xlarge", N_NODES, filesystem="moosefs")
    ensemble = Ensemble.replicated(template, LARGE_W)
    config = RunConfig(record_jobs=False)
    return PullEngine(spec, config=config).run(ensemble)


def test_fig10_even_load_distribution(benchmark, template, scale_note):
    result = benchmark.pedantic(run_fig10, args=(template,), rounds=1, iterations=1)
    nodes = result.cluster.nodes
    cpu_totals = np.array([n.cores.log.integrate(result.makespan) for n in nodes])
    read_totals = np.array(
        [n.disk.read.log.integrate(result.makespan) for n in nodes]
    )
    write_totals = np.array(
        [n.disk.write.log.integrate(result.makespan) for n in nodes]
    )

    rows = []
    for i in (0, len(nodes) // 2, len(nodes) - 1):
        m = node_metrics(result, i)
        rows.append(
            {
                "node": f"r3-{i:02d}",
                "cpu_core_s": round(cpu_totals[i], 0),
                "mean_cpu_%": round(m.mean_cpu_util(), 1),
                "reads_GB": round(read_totals[i] / 1e9, 2),
                "writes_GB": round(write_totals[i] / 1e9, 2),
            }
        )
    cv = lambda x: float(np.std(x) / np.mean(x)) if np.mean(x) > 0 else 0.0
    text = (
        scale_note
        + f"\n{LARGE_W} workflows on {N_NODES} x r3.8xlarge (moosefs), "
        f"makespan {result.makespan:.0f} s\n"
        + summary_table(rows)
        + f"\nacross all {N_NODES} nodes: CV(cpu)={cv(cpu_totals):.3f} "
        f"CV(reads)={cv(read_totals):.3f} CV(writes)={cv(write_totals):.3f}"
    )
    emit("fig10_large_scale", text)

    # Even distribution: compute within 5%, I/O within 20% across nodes.
    assert cv(cpu_totals) < 0.05
    assert cv(write_totals) < 0.20
    if read_totals.mean() > 1e6:
        assert cv(read_totals) < 0.25
    # Three representative nodes show the same temporal pattern.
    series = [node_metrics(result, i).cpu_util for i in (0, len(nodes) // 2, len(nodes) - 1)]
    for a, b in ((0, 1), (0, 2)):
        corr = np.corrcoef(series[a], series[b])[0, 1]
        assert corr > 0.9
