"""Shared fixtures for the paper-reproduction benchmarks.

Every benchmark regenerates one of the paper's tables or figures and
prints the reproduced rows/series (also written to
``benchmarks/results/<name>.txt`` so the output survives pytest's capture).

Scale: the paper's reference workload is the 6.0-degree Montage workflow
(8,586 jobs); the full 200-workflow ensemble is 1.7M jobs, which the pure
Python DES executes in minutes, not seconds.  Benchmarks therefore default
to **2.0-degree** workflows (1,010 jobs — same DAG shape, same three-stage
behaviour) and switch to the paper's exact scale with ``REPRO_FULL_SCALE=1``.
EXPERIMENTS.md records which scale produced the published numbers.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.generators import montage_workflow

FULL_SCALE = bool(int(os.environ.get("REPRO_FULL_SCALE", "0")))

#: Montage degree used by the figure benchmarks.
DEGREE = 6.0 if FULL_SCALE else 2.0

#: Ensemble size for the large-scale experiments (Figs 10/11).
LARGE_W = 200 if FULL_SCALE else 100

RESULTS_DIR = Path(__file__).parent / ("results-full" if FULL_SCALE else "results")


@pytest.fixture(scope="session")
def degree() -> float:
    return DEGREE


@pytest.fixture(scope="session")
def template():
    """The Montage workflow all figure benchmarks share."""
    return montage_workflow(degree=DEGREE)


@pytest.fixture(scope="session")
def template_6deg():
    """The paper's reference workload, for workload-shape assertions."""
    return montage_workflow(degree=6.0) if FULL_SCALE else montage_workflow(degree=2.0)


def emit(name: str, text: str) -> None:
    """Print a reproduced table/series and persist it under results/."""
    banner = f"== {name} " + "=" * max(0, 70 - len(name))
    print(f"\n{banner}\n{text}\n")
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


@pytest.fixture(scope="session")
def scale_note() -> str:
    return (
        f"scale: degree={DEGREE} Montage"
        + (" (paper scale)" if FULL_SCALE else " (reduced; REPRO_FULL_SCALE=1 for paper scale)")
    )
