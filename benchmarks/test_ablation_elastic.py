"""Ablation — dynamic resource provisioning vs billing model (paper
§V.A.3).

The paper predicts that scaling the worker fleet in and out with queue
depth "might not be effective for public clouds with a charge-by-hour
model (such as AWS), but can be useful for public clouds with a
charge-by-minute model (such as Google Compute Engine)" — and could not
test it, being on AWS.  The simulator can:

* static fleet vs queue-depth autoscaler on the same ensemble;
* cost under per-hour, per-minute and per-second billing.

Expected: under per-minute/per-second billing the elastic run is cheaper
(idle blocking-stage capacity is released); under 2015-style hourly
billing the saving collapses because every lease rounds up to an hour.
"""

from conftest import emit

from repro.cloud import BillingModel, ClusterSpec
from repro.engines import PullEngine, RunConfig
from repro.monitor import summary_table
from repro.provision import queue_depth_autoscaler
from repro.workflow import Ensemble

N_NODES = 6
N_WORKFLOWS = 8


def run_ablation(template):
    spec = ClusterSpec("c3.8xlarge", N_NODES, filesystem="moosefs")
    ensemble = Ensemble.replicated(template, N_WORKFLOWS)
    cfg = RunConfig(record_jobs=False)
    static = PullEngine(spec, cfg).run(ensemble)
    auto = queue_depth_autoscaler(
        min_nodes=1,
        check_interval=5.0,
        scale_out_depth=64,
        scale_in_depth=2,
        boot_delay=15.0,
    )
    elastic = PullEngine(
        spec, cfg, autoscaler=auto, initially_down=tuple(range(1, N_NODES))
    ).run(ensemble)
    return static, elastic


def test_ablation_elastic_provisioning(benchmark, template, scale_note):
    static, elastic = benchmark.pedantic(
        run_ablation, args=(template,), rounds=1, iterations=1
    )
    rows = []
    for name, result in (("static fleet", static), ("queue-depth autoscaler", elastic)):
        node_seconds = sum(
            e - s for spans in result.rental_spans.values() for s, e in spans
        )
        rows.append(
            {
                "provisioning": name,
                "makespan_s": round(result.makespan, 1),
                "node_seconds": round(node_seconds, 0),
                "per_hour_usd": round(result.elastic_cost(BillingModel.PER_HOUR), 2),
                "per_minute_usd": round(result.elastic_cost(BillingModel.PER_MINUTE), 3),
                "per_second_usd": round(result.elastic_cost(BillingModel.PER_SECOND), 3),
            }
        )
    emit("ablation_elastic", scale_note + "\n" + summary_table(rows))

    # Elastic releases idle capacity: fewer node-seconds leased.
    static_ns = sum(e - s for v in static.rental_spans.values() for s, e in v)
    elastic_ns = sum(e - s for v in elastic.rental_spans.values() for s, e in v)
    assert elastic_ns < static_ns
    # Per-minute and per-second billing reward it.
    assert elastic.elastic_cost(BillingModel.PER_MINUTE) < static.elastic_cost(
        BillingModel.PER_MINUTE
    )
    assert elastic.elastic_cost(BillingModel.PER_SECOND) < static.elastic_cost(
        BillingModel.PER_SECOND
    )
    # Hourly billing erases (most of) the advantage: every short lease
    # rounds up to a full hour, as the paper warned for 2015 AWS.
    hourly_saving = static.elastic_cost(BillingModel.PER_HOUR) - elastic.elastic_cost(
        BillingModel.PER_HOUR
    )
    minute_saving = static.elastic_cost(
        BillingModel.PER_MINUTE
    ) - elastic.elastic_cost(BillingModel.PER_MINUTE)
    assert minute_saving > 0
    assert hourly_saving <= minute_saving + 1e-9 or hourly_saving <= 0
    # The static fleet is never slower.
    assert static.makespan <= elastic.makespan