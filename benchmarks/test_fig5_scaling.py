"""Fig 5 — impact of workload and cluster size; node performance index.

* (a) single-node cluster: execution time grows linearly with the number
  of workflows (1..10);
* (b) multi-node cluster at a fixed 20-workflow load: execution time
  decreases with cluster size, flattening out;
* (c) the node performance index P = W/(N*T) decreases with cluster size
  (clustering performance degradation) and converges; the per-type
  ordering is c3 < r3 < i2 (paper: 0.0015 / 0.0024 / 0.0026).
"""

import numpy as np
from conftest import FULL_SCALE, emit

from repro.monitor import format_series
from repro.provision import ProfilingCampaign

TYPES = ("c3.8xlarge", "r3.8xlarge", "i2.8xlarge")
SINGLE_COUNTS = (1, 2, 4, 6, 8, 10)
NODE_COUNTS = (2, 3, 4, 5, 6)
MULTI_W = 20


def run_fig5(template):
    campaign = ProfilingCampaign(template)
    single = {t: campaign.single_node(t, SINGLE_COUNTS) for t in TYPES}
    multi = {
        t: campaign.multi_node(t, NODE_COUNTS, workflows=MULTI_W) for t in TYPES
    }
    return single, multi


def test_fig5_workload_and_cluster_size(benchmark, template, scale_note):
    single, multi = benchmark.pedantic(
        run_fig5, args=(template,), rounds=1, iterations=1
    )
    lines = [scale_note]
    for t in TYPES:
        lines.append(
            format_series(
                f"fig5a {t}", single[t].workflow_counts, single[t].execution_times, "s"
            )
        )
    for t in TYPES:
        lines.append(
            format_series(
                f"fig5b {t}", multi[t].node_counts, multi[t].execution_times, "s"
            )
        )
    for t in TYPES:
        lines.append(
            format_series(f"fig5c {t}", multi[t].node_counts, multi[t].indices, "P")
        )
    converged = {t: multi[t].converged for t in TYPES}
    lines.append(
        "converged indices: "
        + "  ".join(f"{t}={converged[t]:.5f}" for t in TYPES)
        + "   (paper at 6.0deg: c3=0.0015 r3=0.0024 i2=0.0026)"
    )
    emit("fig5_scaling", "\n".join(lines))

    for t in TYPES:
        times = np.array(single[t].execution_times)
        counts = np.array(SINGLE_COUNTS, dtype=float)
        # (a) near-linear workload scaling: excellent linear fit and
        # monotone growth.
        assert np.all(np.diff(times) > 0)
        corr = np.corrcoef(counts, times)[0, 1]
        assert corr > 0.99
        # (b) more nodes -> faster, with diminishing returns: the first
        # doubling helps more than the last increment.
        mtimes = multi[t].execution_times
        assert mtimes[0] > mtimes[-1]
        first_gain = mtimes[0] - mtimes[1]
        last_gain = mtimes[-2] - mtimes[-1]
        assert first_gain >= last_gain - 1e-6
        # (c) index decreases with cluster size.
        assert multi[t].indices[0] > multi[t].indices[-1]

    # (c) per-type ordering of the converged index matches the paper.
    assert converged["c3.8xlarge"] < converged["i2.8xlarge"]
    assert converged["c3.8xlarge"] < converged["r3.8xlarge"]
    if FULL_SCALE:
        # Paper-scale anchors (6.0-degree Montage, NFS): the converged
        # indices should land in the paper's neighbourhood.
        assert 0.0008 < converged["c3.8xlarge"] < 0.0030
        assert 0.0012 < converged["r3.8xlarge"] < 0.0045
        assert 0.0013 < converged["i2.8xlarge"] < 0.0050
