"""Ablation — the write-back cache (DESIGN.md §5).

The paper's §IV.A signature of write-back caching is that "the operating
system caches the disk writes and flushes them to the disk in batches,
resulting in the intermittent disk writes at full capacity" (Fig 4b),
while jobs themselves stay CPU-bound.  Shrinking the simulated dirty-page
buffer to a single page makes every job wait for the device:

* the burst signature disappears — the write channel's peak-to-mean
  throughput ratio collapses because writes trickle out job by job;
* job write phases become visible (non-zero write time per record);
* the makespan can only get worse.
"""

from conftest import emit

from repro.cloud import ClusterSpec
from repro.engines import PullEngine
from repro.engines.base import RunConfig
from repro.monitor import node_metrics, summary_table
from repro.workflow import Ensemble

N_WORKFLOWS = 6


class TinyCachePullEngine(PullEngine):
    """PullEngine whose nodes have an (almost) disabled write-back cache."""

    def _setup(self, ensemble):
        sim, cluster, thread_logs = super()._setup(ensemble)
        for node in cluster.nodes:
            # One page of buffer and no batching: effectively synchronous.
            node.write_cache.capacity = 4096.0
            node.write_cache.flush_interval = 0.0
        return sim, cluster, thread_logs


def run_ablation(template):
    spec = ClusterSpec("c3.8xlarge", 1, filesystem="local")
    ensemble = Ensemble.replicated(template, N_WORKFLOWS)
    with_cache = PullEngine(spec, RunConfig()).run(ensemble)
    without = TinyCachePullEngine(spec, RunConfig()).run(ensemble)
    return with_cache, without


def burstiness(result) -> float:
    m = node_metrics(result, 0)
    mean = float(m.disk_write.mean())
    return float(m.disk_write.max()) / mean if mean > 0 else 0.0


def test_ablation_writeback_cache(benchmark, template, scale_note):
    with_cache, without = benchmark.pedantic(
        run_ablation, args=(template,), rounds=1, iterations=1
    )
    rows = []
    for name, result in (("write-back cache", with_cache), ("synchronous", without)):
        write_time = sum(r.write_time for r in result.records)
        rows.append(
            {
                "mode": name,
                "makespan_s": round(result.makespan, 1),
                "write_burst_peak/mean": round(burstiness(result), 2),
                "sum_job_write_time_s": round(write_time, 1),
            }
        )
    emit("ablation_writeback", scale_note + "\n" + summary_table(rows))

    # With the cache, jobs never wait on writes; without it they do.
    cached_wait = sum(r.write_time for r in with_cache.records)
    sync_wait = sum(r.write_time for r in without.records)
    assert cached_wait < 1e-6
    assert sync_wait > 1.0
    # Removing the cache never helps the makespan.
    assert without.makespan >= with_cache.makespan - 1e-6
    # Conservation: the same logical bytes were written either way.
    assert abs(
        with_cache.cluster.fs.bytes_written - without.cluster.fs.bytes_written
    ) < 1.0
