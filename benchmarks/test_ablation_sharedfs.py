"""Ablation — shared-file-system choice (DESIGN.md §5).

The paper used N-to-N NFS for small clusters and switched to MooseFS for
the large-scale runs because per-export NFS "results in unbalanced
utilization" as clusters grow.  This ablation runs the same ensemble on
an 8-node cluster under the three placement policies:

* **central NFS** — every byte funnels through node 0's disk and NIC;
* **N-to-N NFS** — each workflow's folder lives on one export (hot
  spots when few workflows dominate);
* **MooseFS** — per-file uniform striping.

Expectation: MooseFS <= N-to-N <= central on makespan, and the spread of
per-node disk traffic (imbalance) shrinks in the same order.
"""

import numpy as np
from conftest import emit

from repro.cloud import ClusterSpec
from repro.engines import PullEngine
from repro.engines.base import RunConfig
from repro.monitor import summary_table
from repro.workflow import Ensemble

FS_CHOICES = ("nfs-central", "nfs-nton", "moosefs")
N_NODES = 8
N_WORKFLOWS = 16


def run_ablation(template):
    out = {}
    for fs in FS_CHOICES:
        spec = ClusterSpec("c3.8xlarge", N_NODES, filesystem=fs)
        ensemble = Ensemble.replicated(template, N_WORKFLOWS)
        result = PullEngine(spec, RunConfig(record_jobs=False)).run(ensemble)
        reads = np.array(
            [n.disk.read.log.integrate(result.makespan) for n in result.cluster.nodes]
        )
        writes = np.array(
            [n.disk.write.log.integrate(result.makespan) for n in result.cluster.nodes]
        )
        io_per_node = reads + writes
        imbalance = float(io_per_node.max() / max(io_per_node.mean(), 1.0))
        out[fs] = (result.makespan, imbalance)
    return out


def test_ablation_shared_filesystem(benchmark, template, scale_note):
    out = benchmark.pedantic(run_ablation, args=(template,), rounds=1, iterations=1)
    rows = [
        {
            "filesystem": fs,
            "makespan_s": round(out[fs][0], 1),
            "max/mean node I/O": round(out[fs][1], 2),
        }
        for fs in FS_CHOICES
    ]
    emit("ablation_sharedfs", scale_note + "\n" + summary_table(rows))

    # Distribution beats centralisation.
    assert out["moosefs"][0] <= out["nfs-central"][0]
    assert out["nfs-nton"][0] <= out["nfs-central"][0] * 1.05
    # MooseFS balances device traffic best; central NFS is one hot node.
    assert out["moosefs"][1] < out["nfs-nton"][1] + 0.5
    assert out["nfs-central"][1] > out["moosefs"][1]
