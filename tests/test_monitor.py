"""Tests for metrics sampling, timelines and reports."""

import numpy as np
import pytest

from repro.cloud import ClusterSpec
from repro.engines import PullEngine, RunConfig
from repro.generators import montage_workflow
from repro.monitor import (
    cluster_metrics,
    format_series,
    node_metrics,
    run_summary,
    slot_timeline,
    summary_table,
)
from repro.monitor.timeline import stage_windows
from repro.workflow import Ensemble


@pytest.fixture(scope="module")
def result():
    template = montage_workflow(degree=1.0)
    return PullEngine(ClusterSpec("c3.8xlarge", 1, filesystem="local")).run(
        Ensemble([template])
    )


def test_node_metrics_shapes(result):
    m = node_metrics(result, 0, dt=3.0)
    n = len(m.times)
    assert n == int(np.ceil(result.makespan / 3.0))
    assert len(m.cpu_util) == n
    assert len(m.disk_write) == n
    assert len(m.disk_read) == n
    assert len(m.threads) == n


def test_cpu_util_bounded(result):
    m = node_metrics(result, 0)
    assert m.cpu_util.min() >= 0.0
    assert m.cpu_util.max() <= 100.0 + 1e-9


def test_stage_pattern_visible_in_cpu(result):
    """Montage's three-stage pattern (Fig 4a): near-full utilisation in
    stage 1, a low-utilisation blocking window, then activity again."""
    m = node_metrics(result, 0)
    (s2_start, s2_end) = next(iter(stage_windows(result).values()))
    in_stage2 = (m.times >= s2_start) & (m.times + 3.0 <= s2_end)
    stage1 = m.times + 3.0 <= s2_start
    if in_stage2.sum() >= 1 and stage1.sum() >= 1:
        assert m.cpu_util[in_stage2].mean() < m.cpu_util[stage1].mean()
        # Blocking stage: a single busy core out of 32 -> ~3%.
        assert m.cpu_util[in_stage2].mean() < 20.0


def test_threads_peak_capped(result):
    m = node_metrics(result, 0)
    assert m.peak_threads <= 32


def test_cluster_metrics_aggregates():
    template = montage_workflow(degree=1.0)
    res = PullEngine(ClusterSpec("c3.8xlarge", 2, filesystem="moosefs")).run(
        Ensemble.replicated(template, 2)
    )
    agg = cluster_metrics(res)
    m0 = node_metrics(res, 0)
    m1 = node_metrics(res, 1)
    assert agg.disk_write == pytest.approx(m0.disk_write + m1.disk_write)
    assert agg.cpu_util == pytest.approx((m0.cpu_util + m1.cpu_util) / 2)


def test_slot_timeline_no_overlap(result):
    segments = slot_timeline(result)
    by_slot = {}
    for seg in segments:
        by_slot.setdefault((seg.node, seg.slot), []).append(seg)
    for segs in by_slot.values():
        segs.sort(key=lambda s: s.start)
        for a, b in zip(segs, segs[1:]):
            assert a.end <= b.start + 1e-9


def test_slot_timeline_covers_all_records(result):
    segments = slot_timeline(result)
    assert len(segments) == len(result.records)
    assert max(s.slot for s in segments) < 32


def test_slot_timeline_requires_records():
    template = montage_workflow(degree=0.5)
    res = PullEngine(
        ClusterSpec("c3.8xlarge", 1, filesystem="local"),
        config=RunConfig(record_jobs=False),
    ).run(Ensemble([template]))
    with pytest.raises(ValueError, match="no job records"):
        slot_timeline(res)


def test_stage_windows_present(result):
    windows = stage_windows(result)
    assert len(windows) == 1
    (start, end) = next(iter(windows.values()))
    assert 0 < start < end < result.makespan


def test_run_summary_fields(result):
    summary = run_summary(result)
    assert summary["engine"] == "dewe-v2"
    assert summary["jobs"] == result.jobs_executed
    assert summary["makespan_s"] == pytest.approx(result.makespan, abs=0.1)
    assert summary["cost_usd"] == pytest.approx(result.cost(), abs=0.01)


def test_summary_table_renders():
    rows = [{"a": 1, "b": 2.5}, {"a": 10, "b": 0.123456}]
    text = summary_table(rows)
    assert "a" in text and "b" in text
    assert "10" in text
    assert summary_table([]) == "(no rows)"


def test_format_series():
    text = format_series("fig5a", [1, 2], [10.0, 20.0], unit="s")
    assert text.startswith("fig5a [s]:")
    assert "1:10" in text and "2:20" in text
