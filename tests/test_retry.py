"""Unit tests for the unified retry policy and dead-letter state machine."""

import pytest

from repro.faults.retry import DeadLetterEntry, DeadLetterQueue, RetryPolicy
from repro.dewe.state import JobStatus, WorkflowState
from repro.workflow import Workflow


def diamond() -> Workflow:
    """a -> (b, c) -> d."""
    wf = Workflow("diamond")
    for job_id in ("a", "b", "c", "d"):
        wf.new_job(job_id, "compute", runtime=1.0)
    wf.add_dependency("a", "b")
    wf.add_dependency("a", "c")
    wf.add_dependency("b", "d")
    wf.add_dependency("c", "d")
    return wf


# -- RetryPolicy ------------------------------------------------------------
def test_policy_validation():
    with pytest.raises(ValueError):
        RetryPolicy(max_attempts=-1)
    with pytest.raises(ValueError):
        RetryPolicy(base_delay=-0.1)
    with pytest.raises(ValueError):
        RetryPolicy(backoff_factor=0.5)
    with pytest.raises(ValueError):
        RetryPolicy(jitter=1.5)


def test_default_policy_is_the_papers_behaviour():
    policy = RetryPolicy()
    assert not policy.exhausted(10_000)
    assert policy.backoff(5) == 0.0
    assert not policy.redispatch_lost


def test_exhausted_budget():
    policy = RetryPolicy(max_attempts=3)
    assert not policy.exhausted(2)
    assert policy.exhausted(3)
    assert policy.exhausted(4)


def test_backoff_grows_exponentially_and_caps():
    policy = RetryPolicy(base_delay=1.0, backoff_factor=2.0, max_delay=5.0)
    assert policy.backoff(1) == 1.0
    assert policy.backoff(2) == 2.0
    assert policy.backoff(3) == 4.0
    assert policy.backoff(4) == 5.0  # capped


def test_jitter_is_deterministic_and_bounded():
    policy = RetryPolicy(base_delay=10.0, jitter=0.5)
    delays = {policy.backoff(1, key=f"wf/job{i}") for i in range(50)}
    assert len(delays) > 10  # actually spread
    for d in delays:
        assert 5.0 <= d <= 15.0
    # Pure function of (key, attempts): byte-identical across calls.
    assert policy.backoff(3, key="wf/x") == policy.backoff(3, key="wf/x")


# -- WorkflowState dead-lettering -------------------------------------------
def test_failure_within_budget_requeues():
    state = WorkflowState(diamond(), retry=RetryPolicy(max_attempts=3))
    assert state.initial_ready() == ["a"]
    assert state.on_failed("a", 1, now=1.0) == "a"
    assert state.status["a"] is JobStatus.QUEUED
    assert state.attempt["a"] == 2
    assert state.resubmissions == 1


def test_budget_exhaustion_dead_letters_and_cascades():
    state = WorkflowState(diamond(), retry=RetryPolicy(max_attempts=2))
    state.initial_ready()
    assert state.on_failed("a", 1, now=1.0) == "a"
    assert state.on_failed("a", 2, now=2.0) is None
    assert state.status == {
        "a": JobStatus.DEAD,
        "b": JobStatus.DEAD,
        "c": JobStatus.DEAD,
        "d": JobStatus.DEAD,
    }
    assert state.is_settled and not state.is_complete
    reasons = {e.job_id: e.reason for e in state.dead_letters}
    assert reasons == {
        "a": "failed",
        "b": "upstream-dead",
        "c": "upstream-dead",
        "d": "upstream-dead",
    }
    assert state.dead_letters[0].attempts == 2


def test_partial_cascade_still_settles():
    """Kill one branch (b); a, c survive and d cascades — the workflow
    settles with 2 completed + 2 dead."""
    state = WorkflowState(diamond(), retry=RetryPolicy(max_attempts=1))
    state.initial_ready()
    ready = state.on_completed("a", 1)
    assert sorted(ready) == ["b", "c"]
    assert state.on_failed("b", 1, now=1.0) is None  # budget of 1: dead
    assert state.status["d"] is JobStatus.DEAD  # cascaded
    assert not state.is_settled
    assert state.on_completed("c", 1) == []  # d is DEAD, must not revive
    assert state.is_settled
    assert state.n_completed == 2 and state.n_dead == 2


def test_timeout_exhaustion_dead_letters():
    state = WorkflowState(
        diamond(), default_timeout=10.0, retry=RetryPolicy(max_attempts=1)
    )
    state.initial_ready()
    state.on_running("a", 1, now=0.0)
    assert state.expired(11.0) == []  # budget exhausted -> dead, not requeued
    assert state.status["a"] is JobStatus.DEAD
    assert state.dead_letters[0].reason == "timeout"
    assert state.is_settled


def test_duplicate_acks_are_counted_not_applied():
    state = WorkflowState(diamond())
    state.initial_ready()
    state.on_running("a", 1, now=0.0)
    assert sorted(state.on_completed("a", 1)) == ["b", "c"]
    n = state.n_completed
    assert state.on_completed("a", 1) == []  # duplicate completion
    assert state.on_running("a", 1, now=0.0) is False  # stale running
    assert state.on_failed("a", 1) is None  # stale failure
    assert state.n_completed == n
    assert state.duplicate_acks == 2


def test_mark_dispatched_arms_deadline_only_when_asked():
    plain = WorkflowState(diamond(), default_timeout=5.0)
    plain.initial_ready()
    plain.mark_dispatched("a", now=0.0)
    assert "a" not in plain.deadline  # paper behaviour: running ack arms

    lossy = WorkflowState(
        diamond(),
        default_timeout=5.0,
        retry=RetryPolicy(redispatch_lost=True),
    )
    lossy.initial_ready()
    lossy.mark_dispatched("a", now=0.0)
    assert lossy.deadline["a"] == 5.0
    assert lossy.expired(6.0) == ["a"]  # lost dispatch recovered
    assert lossy.attempt["a"] == 2


# -- DeadLetterQueue ---------------------------------------------------------
def test_dead_letter_queue_views():
    dlq = DeadLetterQueue()
    dlq.add(DeadLetterEntry("wf1", "a", 3, "failed", 1.0))
    dlq.extend(
        [
            DeadLetterEntry("wf1", "b", 0, "upstream-dead", 1.0),
            DeadLetterEntry("wf2", "x", 2, "timeout", 2.0),
        ]
    )
    assert len(dlq) == 3
    assert dlq.jobs() == [("wf1", "a"), ("wf1", "b"), ("wf2", "x")]
    assert sorted(dlq.by_workflow()) == ["wf1", "wf2"]
    assert [e.job_id for e in dlq.poisoned()] == ["a", "x"]
    assert "failed after 3 attempt(s)" in str(dlq.entries[0])
