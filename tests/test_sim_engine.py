"""Unit tests for the DES kernel event loop and process model."""

import pytest

from repro.sim import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    SimulationError,
    Simulator,
)


def test_timeout_advances_clock():
    sim = Simulator()
    log = []

    def proc():
        yield sim.timeout(5.0)
        log.append(sim.now)
        yield sim.timeout(2.5)
        log.append(sim.now)

    sim.process(proc())
    sim.run()
    assert log == [5.0, 7.5]


def test_timeout_value_passthrough():
    sim = Simulator()
    seen = []

    def proc():
        value = yield sim.timeout(1.0, value="tick")
        seen.append(value)

    sim.process(proc())
    sim.run()
    assert seen == ["tick"]


def test_negative_timeout_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.timeout(-1.0)


def test_event_succeed_wakes_waiter():
    sim = Simulator()
    gate = sim.event()
    seen = []

    def waiter():
        value = yield gate
        seen.append((sim.now, value))

    def opener():
        yield sim.timeout(3.0)
        gate.succeed("open")

    sim.process(waiter())
    sim.process(opener())
    sim.run()
    assert seen == [(3.0, "open")]


def test_event_double_trigger_raises():
    sim = Simulator()
    ev = sim.event()
    ev.succeed()
    with pytest.raises(SimulationError):
        ev.succeed()


def test_event_fail_throws_into_process():
    sim = Simulator()
    gate = sim.event()
    caught = []

    def waiter():
        try:
            yield gate
        except RuntimeError as exc:
            caught.append(str(exc))

    sim.process(waiter())
    gate.fail(RuntimeError("boom"))
    sim.run()
    assert caught == ["boom"]


def test_fail_requires_exception_instance():
    sim = Simulator()
    with pytest.raises(TypeError):
        sim.event().fail("not an exception")


def test_process_return_value_propagates():
    sim = Simulator()
    results = []

    def child():
        yield sim.timeout(2.0)
        return 42

    def parent():
        value = yield sim.process(child())
        results.append(value)

    sim.process(parent())
    sim.run()
    assert results == [42]


def test_process_exception_propagates_to_waiter():
    sim = Simulator()
    caught = []

    def child():
        yield sim.timeout(1.0)
        raise ValueError("child failed")

    def parent():
        try:
            yield sim.process(child())
        except ValueError as exc:
            caught.append(str(exc))

    sim.process(parent())
    sim.run()
    assert caught == ["child failed"]


def test_yield_on_already_fired_event_resumes_immediately():
    sim = Simulator()
    ticks = []

    def proc():
        done = sim.timeout(0.0)
        yield sim.timeout(1.0)
        # `done` fired at t=0; yielding it must not block.
        yield done
        ticks.append(sim.now)

    sim.process(proc())
    sim.run()
    assert ticks == [1.0]


def test_deterministic_fifo_ordering_same_time():
    sim = Simulator()
    order = []

    def proc(name):
        yield sim.timeout(1.0)
        order.append(name)

    for name in "abcde":
        sim.process(proc(name))
    sim.run()
    assert order == list("abcde")


def test_run_until_stops_clock():
    sim = Simulator()

    def proc():
        while True:
            yield sim.timeout(10.0)

    sim.process(proc())
    end = sim.run(until=35.0)
    assert end == 35.0
    assert sim.now == 35.0


def test_run_until_past_raises():
    sim = Simulator()
    sim.run(until=5.0)
    with pytest.raises(ValueError):
        sim.run(until=1.0)


def test_interrupt_waiting_process():
    sim = Simulator()
    log = []

    def victim():
        try:
            yield sim.timeout(100.0)
            log.append("finished")
        except Interrupt as intr:
            log.append(("interrupted", sim.now, intr.cause))

    def killer(proc):
        yield sim.timeout(7.0)
        proc.interrupt("node failure")

    proc = sim.process(victim())
    sim.process(killer(proc))
    sim.run()
    assert log == [("interrupted", 7.0, "node failure")]


def test_interrupt_dead_process_is_noop():
    sim = Simulator()

    def victim():
        yield sim.timeout(1.0)

    proc = sim.process(victim())
    sim.run()
    assert not proc.is_alive
    proc.interrupt("too late")  # must not raise
    sim.run()


def test_interrupted_wait_does_not_resume_twice():
    sim = Simulator()
    log = []

    def victim():
        try:
            yield sim.timeout(10.0)
        except Interrupt:
            log.append("interrupted")
        yield sim.timeout(50.0)
        log.append("second wait done at %g" % sim.now)

    proc = sim.process(victim())

    def killer():
        yield sim.timeout(4.0)
        proc.interrupt()

    sim.process(killer())
    sim.run()
    # The abandoned 10 s timeout must not resume the process at t=10.
    assert log == ["interrupted", "second wait done at 54"]


def test_uncaught_interrupt_terminates_process():
    sim = Simulator()

    def victim():
        yield sim.timeout(10.0)

    proc = sim.process(victim())

    def killer():
        yield sim.timeout(1.0)
        proc.interrupt()

    sim.process(killer())
    sim.run()
    assert not proc.is_alive


def test_all_of_waits_for_every_event():
    sim = Simulator()
    seen = []

    def proc():
        events = [sim.timeout(t, value=t) for t in (3.0, 1.0, 2.0)]
        values = yield AllOf(sim, events)
        seen.append((sim.now, values))

    sim.process(proc())
    sim.run()
    assert seen == [(3.0, [3.0, 1.0, 2.0])]


def test_any_of_fires_on_first():
    sim = Simulator()
    seen = []

    def proc():
        events = [sim.timeout(t, value=t) for t in (3.0, 1.0, 2.0)]
        value = yield AnyOf(sim, events)
        seen.append((sim.now, value))

    sim.process(proc())
    sim.run()
    assert seen == [(1.0, 1.0)]


def test_all_of_empty_fires_immediately():
    sim = Simulator()
    seen = []

    def proc():
        values = yield AllOf(sim, [])
        seen.append((sim.now, values))

    sim.process(proc())
    sim.run()
    assert seen == [(0.0, [])]


def test_schedule_call_runs_function():
    sim = Simulator()
    calls = []
    sim.schedule_call(4.0, calls.append, "x")
    sim.run()
    assert calls == ["x"]
    assert sim.now == 4.0


def test_peek_reports_next_event_time():
    sim = Simulator()
    assert sim.peek() == float("inf")
    sim.timeout(9.0)
    assert sim.peek() == 9.0


def test_yielding_non_event_raises():
    sim = Simulator()

    def proc():
        yield 17  # not an Event

    sim.process(proc())
    with pytest.raises(SimulationError):
        sim.run()


def test_nested_processes_chain():
    sim = Simulator()
    trace = []

    def level(depth):
        if depth > 0:
            yield sim.process(level(depth - 1))
        yield sim.timeout(1.0)
        trace.append((depth, sim.now))

    sim.process(level(3))
    sim.run()
    assert trace == [(0, 1.0), (1, 2.0), (2, 3.0), (3, 4.0)]
