"""Tests for makespan lower bounds and plan feasibility checks."""

import pytest

from repro.cloud import ClusterSpec
from repro.engines import PullEngine, RunConfig
from repro.generators import montage_workflow, random_layered_workflow
from repro.provision.bounds import (
    check_plan_feasible,
    ensemble_lower_bound,
    workflow_bounds,
)
from repro.workflow import Ensemble
from repro.workflow.analysis import critical_path


def test_workflow_bounds_components():
    wf = montage_workflow(degree=1.0)
    spec = ClusterSpec("c3.8xlarge", 1, filesystem="local")
    bounds = workflow_bounds(wf, spec)
    cp, _ = critical_path(wf)
    assert bounds.critical_path == pytest.approx(cp)
    assert bounds.work_bound == pytest.approx(wf.total_runtime() / 32)
    assert bounds.lower_bound == max(bounds.critical_path, bounds.work_bound)


def test_bounds_respect_slow_cores():
    wf = montage_workflow(degree=1.0)
    slow = ClusterSpec("m3.2xlarge", 1, filesystem="local")
    fast = ClusterSpec("c3.8xlarge", 1, filesystem="local")
    assert workflow_bounds(wf, slow).critical_path > workflow_bounds(
        wf, fast
    ).critical_path


def test_mixed_cluster_uses_best_speed_for_cp():
    wf = montage_workflow(degree=1.0)
    mixed = ClusterSpec(
        "c3.8xlarge", 2, filesystem="moosefs",
        node_types=("c3.8xlarge", "m3.2xlarge"),
    )
    fast_only = ClusterSpec("c3.8xlarge", 1, filesystem="local")
    # The critical path can run on the fast node.
    assert workflow_bounds(wf, mixed).critical_path == pytest.approx(
        workflow_bounds(wf, fast_only).critical_path
    )


def test_simulated_makespan_respects_bounds():
    """No engine run may beat the information-theoretic bounds."""
    for seed in range(3):
        wf = random_layered_workflow(n_jobs=40, n_levels=5, seed=seed)
        spec = ClusterSpec("c3.8xlarge", 1, filesystem="local")
        ensemble = Ensemble([wf])
        result = PullEngine(spec, RunConfig(record_jobs=False)).run(ensemble)
        assert result.makespan >= ensemble_lower_bound(ensemble, spec) - 1e-6


def test_ensemble_bound_includes_submission_offsets():
    wf = montage_workflow(degree=0.5)
    spec = ClusterSpec("c3.8xlarge", 4, filesystem="moosefs")
    batch = Ensemble.replicated(wf, 3)
    staggered = Ensemble.replicated(wf, 3, interval=1000.0)
    assert ensemble_lower_bound(staggered, spec) >= ensemble_lower_bound(
        batch, spec
    ) + 1999.0  # last submission at t=2000 dominates


def test_plan_feasibility():
    wf = montage_workflow(degree=1.0)
    spec = ClusterSpec("c3.8xlarge", 2, filesystem="moosefs")
    # Generous deadline: feasible.
    assert check_plan_feasible(wf, spec, workflows=4, deadline=10_000.0)
    # Impossible deadline (shorter than the critical path): infeasible.
    cp, _ = critical_path(wf)
    assert not check_plan_feasible(wf, spec, workflows=1, deadline=cp / 2)
    # Work-bound infeasibility: far too many workflows for the deadline.
    assert not check_plan_feasible(wf, spec, workflows=10_000, deadline=60.0)


def test_plan_feasibility_validation():
    wf = montage_workflow(degree=0.5)
    spec = ClusterSpec("c3.8xlarge", 1, filesystem="local")
    with pytest.raises(ValueError):
        check_plan_feasible(wf, spec, workflows=0, deadline=100.0)
    with pytest.raises(ValueError):
        check_plan_feasible(wf, spec, workflows=1, deadline=0.0)
