"""Tests for workflow analysis: levels, critical path, stages, stats."""

import pytest

from repro.generators import montage_workflow
from repro.workflow import DataFile, Workflow
from repro.workflow.analysis import (
    blocking_jobs,
    critical_path,
    stage_decomposition,
    summarize,
    topological_levels,
)


def chain(runtimes) -> Workflow:
    wf = Workflow("chain")
    prev = None
    for i, rt in enumerate(runtimes):
        wf.new_job(f"j{i}", "t", runtime=rt)
        if prev is not None:
            wf.add_dependency(prev, f"j{i}")
        prev = f"j{i}"
    return wf


def test_levels_of_chain():
    wf = chain([1, 1, 1])
    assert topological_levels(wf) == {"j0": 0, "j1": 1, "j2": 2}


def test_critical_path_of_chain_is_total():
    wf = chain([1.0, 2.0, 3.0])
    length, path = critical_path(wf)
    assert length == pytest.approx(6.0)
    assert path == ["j0", "j1", "j2"]


def test_critical_path_picks_heavier_branch():
    wf = Workflow("w")
    wf.new_job("a", "t", runtime=1.0)
    wf.new_job("fast", "t", runtime=1.0)
    wf.new_job("slow", "t", runtime=10.0)
    wf.new_job("z", "t", runtime=1.0)
    wf.add_dependency("a", "fast")
    wf.add_dependency("a", "slow")
    wf.add_dependency("fast", "z")
    wf.add_dependency("slow", "z")
    length, path = critical_path(wf)
    assert length == pytest.approx(12.0)
    assert path == ["a", "slow", "z"]


def test_critical_path_empty_workflow():
    length, path = critical_path(Workflow("empty"))
    assert length == 0.0 and path == []


def test_montage_blocking_jobs_detected():
    wf = montage_workflow(degree=0.5)
    blockers = blocking_jobs(wf)
    assert "mConcatFit" in blockers
    assert "mBgModel" in blockers
    # The fan jobs are never blocking.
    assert not any(b.startswith("mProjectPP") for b in blockers)
    assert not any(b.startswith("mDiffFit") for b in blockers)


def test_montage_stage_decomposition():
    wf = montage_workflow(degree=0.5)
    stages = stage_decomposition(wf)
    stage1 = set(stages["stage1"])
    stage2 = set(stages["stage2"])
    stage3 = set(stages["stage3"])
    assert stage1 | stage2 | stage3 == set(wf.jobs)
    assert all(j.startswith(("mProjectPP", "mDiffFit")) for j in stage1)
    assert stage2 == {"mConcatFit", "mBgModel"}
    assert "mAdd" in stage3 and "mJpeg" in stage3
    assert all(not j.startswith("mBackground") or j in stage3 for j in stage3)


def test_stage_decomposition_no_blockers():
    wf = Workflow("flat")
    for i in range(5):
        wf.new_job(f"j{i}", "t", runtime=1.0)
    stages = stage_decomposition(wf)
    assert len(stages["stage1"]) == 5
    assert stages["stage2"] == [] and stages["stage3"] == []


def test_summarize_montage_small():
    wf = montage_workflow(degree=1.0)
    stats = summarize(wf)
    counts = wf.count_by_type()
    assert stats.n_jobs == len(wf)
    assert stats.count_by_type == counts
    assert stats.max_parallelism >= counts["mDiffFit"]
    assert 0.0 < stats.parallel_fraction < 1.0
    assert stats.critical_path_length <= stats.total_runtime
    assert stats.n_input_files == counts["mProjectPP"]


def test_summarize_file_accounting_matches_bytes_by_kind():
    wf = montage_workflow(degree=0.5)
    stats = summarize(wf)
    by_kind = wf.bytes_by_kind()
    assert stats.input_bytes == pytest.approx(by_kind["input"])
    assert stats.intermediate_bytes == pytest.approx(by_kind["intermediate"])
    assert stats.output_bytes == pytest.approx(by_kind["output"])


def test_parallel_fraction_zero_for_chain():
    wf = chain([1.0, 1.0])
    stats = summarize(wf)
    assert stats.parallel_fraction == pytest.approx(0.0)
