"""Determinism regression: same seed, same simulation, bit-identical run.

The simulator documents bit-identical replay (tie-broken agenda, seeded
generators, no wall clock — enforced statically by CL001/CL002).  This
pins the end-to-end property the analysis stack exists to protect: two
runs of the same seeded ensemble agree exactly on makespan, executed-job
count, per-job records and the number of events processed.
"""

from repro.cloud import ClusterSpec
from repro.engines import PullEngine, SchedulingEngine
from repro.engines.base import RunConfig
from repro.generators import montage_workflow
from repro.workflow import Ensemble


def _run(engine_cls, seed):
    template = montage_workflow(degree=0.25, jitter=0.2, seed=seed)
    ensemble = Ensemble.replicated(template, 3, interval=10.0)
    spec = ClusterSpec("c3.8xlarge", 2, filesystem="moosefs")
    engine = engine_cls(spec, RunConfig(record_jobs=True))
    result = engine.run(ensemble)
    return result


def _fingerprint(result):
    records = tuple(
        (r.job_id, r.workflow, r.node, r.start, r.end) for r in result.records
    )
    return (
        result.makespan,
        result.jobs_executed,
        len(result.records),
        result.cluster.sim._seq,  # total events ever scheduled
        records,
    )


def test_pull_engine_bit_identical_across_runs():
    a = _fingerprint(_run(PullEngine, seed=7))
    b = _fingerprint(_run(PullEngine, seed=7))
    assert a == b  # exact equality, no tolerance


def test_scheduling_engine_bit_identical_across_runs():
    a = _fingerprint(_run(SchedulingEngine, seed=11))
    b = _fingerprint(_run(SchedulingEngine, seed=11))
    assert a == b


def test_different_seeds_change_the_run():
    a = _fingerprint(_run(PullEngine, seed=7))
    b = _fingerprint(_run(PullEngine, seed=8))
    assert a[0] != b[0]  # jittered runtimes must actually differ
