"""Timer-wheel agenda: ordering must be byte-identical to the pure heap.

The wheel (docs/PERFORMANCE.md) is a throughput device only: O(1) bucket
appends plus one C-speed sort per bucket instead of two O(log n) heap
operations per timer.  These tests drive randomized and adversarial
timer workloads through a wheel-enabled and a wheel-disabled simulator
and require the *exact* same dispatch sequence — same times, same
relative order within an instant — including the edge cases the boundary
invariant has to get right: ties on the bucket edge, far-future heap
fallback, timers scheduled into an already-flushed bucket, lazy
cancellation, and ``run(until=...)`` push-back.
"""

import random

import pytest

from repro.sim import Event, Simulator


def _trace_of(sim, schedule):
    """Run ``schedule(sim, log)`` to completion and return the log."""
    log = []
    sim.process(schedule(sim, log))
    sim.run()
    return log


def _pair(**kwargs):
    """A wheel-enabled and a wheel-disabled simulator."""
    return Simulator(**kwargs), Simulator(wheel_slots=0)


def _random_burst(seed, n=400):
    """A process scheduling a dense mix of short/long/tied timers."""

    def schedule(sim, log):
        rng = random.Random(seed)
        pending = []
        for i in range(n):
            roll = rng.random()
            if roll < 0.5:
                delay = rng.uniform(0.0, 8.0)  # in-wheel
            elif roll < 0.8:
                delay = rng.choice([1.0, 2.0, 2.0, 4.0])  # heavy ties
            else:
                delay = rng.uniform(300.0, 5000.0)  # beyond the horizon
            timeout = sim.timeout(delay, value=i)
            timeout.callbacks.append(
                lambda ev, i=i: log.append((sim.now, i))
            )
            pending.append(timeout)
            if roll > 0.95 and pending:
                pending.pop(rng.randrange(len(pending))).cancel()
            if roll > 0.9:
                # Advance the clock mid-burst so later timers land in
                # buckets behind the flush cursor (heap fallback path).
                yield sim.timeout(rng.uniform(0.1, 3.0))
        if False:
            yield  # pragma: no cover - generator marker

    return schedule


@pytest.mark.parametrize("seed", [1, 7, 42])
def test_wheel_matches_heap_on_random_workload(seed):
    wheel, heap_only = _pair()
    a = _trace_of(wheel, _random_burst(seed))
    b = _trace_of(heap_only, _random_burst(seed))
    assert a == b
    assert len(a) > 300  # cancelled timers aside, the burst dispatched


def test_wheel_matches_heap_with_tiny_buckets():
    # granularity 0.25 s exercises many bucket boundaries per burst
    wheel = Simulator(wheel_slots=16, wheel_granularity=0.25)
    heap_only = Simulator(wheel_slots=0)
    a = _trace_of(wheel, _random_burst(3))
    b = _trace_of(heap_only, _random_burst(3))
    assert a == b


def test_same_instant_ties_break_by_schedule_order():
    sim = Simulator(wheel_slots=8, wheel_granularity=1.0)
    log = []
    # Three timers at the same instant, scheduled in a known order, one
    # landing exactly on a bucket edge.
    for tag in "abc":
        t = sim.timeout(2.0)
        t.callbacks.append(lambda ev, tag=tag: log.append(tag))
    edge = sim.timeout(1.0)  # exactly on the slot-1/slot-2 boundary
    edge.callbacks.append(lambda ev: log.append("edge"))
    sim.run()
    assert log == ["edge", "a", "b", "c"]


def test_succeed_during_bucket_dispatch_runs_after_bucket():
    # An event succeeded while a bucket drains gets a fresh (larger)
    # seq, so the rest of the bucket at that instant dispatches first.
    sim = Simulator(wheel_slots=8)
    log = []
    side = Event(sim)
    side.callbacks.append(lambda ev: log.append("side"))
    first = sim.timeout(0.5)
    first.callbacks.append(lambda ev: (log.append("first"), side.succeed()))
    second = sim.timeout(0.5)
    second.callbacks.append(lambda ev: log.append("second"))
    sim.run()
    assert log == ["first", "second", "side"]


def test_far_future_timer_fires_after_wheel_drains():
    sim = Simulator(wheel_slots=4, wheel_granularity=1.0)  # horizon 4 s
    log = []
    far = sim.timeout(1000.0, value="far")
    far.callbacks.append(lambda ev: log.append((sim.now, "far")))
    near = sim.timeout(2.0, value="near")
    near.callbacks.append(lambda ev: log.append((sim.now, "near")))
    sim.run()
    assert log == [(2.0, "near"), (1000.0, "far")]


def test_timer_into_flushed_bucket_falls_back_to_heap():
    sim = Simulator(wheel_slots=8, wheel_granularity=1.0)
    log = []

    def proc(sim, log):
        yield sim.timeout(5.5)  # cursor now past buckets 0..5
        short = sim.timeout(0.25)  # lands inside the flushed bucket 5
        short.callbacks.append(lambda ev: log.append(sim.now))
        yield sim.timeout(1.0)

    sim.process(proc(sim, log))
    sim.run()
    assert log == [5.75]


def test_run_until_boundary_pushes_wheel_entry_back():
    sim = Simulator(wheel_slots=8)
    log = []
    t = sim.timeout(3.0)
    t.callbacks.append(lambda ev: log.append(sim.now))
    assert sim.run(until=2.0) == 2.0
    assert log == []
    assert sim.peek() == 3.0  # entry survived the early stop
    sim.run()
    assert log == [3.0]


def test_cancelled_wheel_timer_is_skipped():
    sim = Simulator(wheel_slots=8)
    log = []
    doomed = sim.timeout(1.0)
    doomed.callbacks.append(lambda ev: log.append("doomed"))
    keeper = sim.timeout(2.0)
    keeper.callbacks.append(lambda ev: log.append("keeper"))
    assert doomed.cancel()
    sim.run()
    assert log == ["keeper"]


def test_peek_sees_wheel_entries():
    sim = Simulator(wheel_slots=8)
    assert sim.peek() == float("inf")
    sim.timeout(2.5)
    assert sim.peek() == 2.5
    sim.timeout(1.25)
    assert sim.peek() == 1.25


def test_sanitizer_stepped_run_matches_fast_path():
    import repro.analysis.sanitizer as sanitizer

    a = _trace_of(Simulator(), _random_burst(11))
    with sanitizer.enabled(strict=True):
        b = _trace_of(Simulator(), _random_burst(11))
    assert a == b


def test_granularity_must_be_power_of_two():
    with pytest.raises(ValueError):
        Simulator(wheel_granularity=0.1)
    with pytest.raises(ValueError):
        Simulator(wheel_granularity=0.0)
    with pytest.raises(ValueError):
        Simulator(wheel_slots=-1)
    Simulator(wheel_granularity=0.5)  # powers of two are fine
    Simulator(wheel_granularity=4.0)
