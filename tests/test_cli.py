"""Tests for the command-line entry points."""

import pytest

from repro.cli import main_plan, main_profile, main_run


def test_run_cli_dewe(capsys):
    rc = main_run(["--workflow", "montage", "--size", "0.5", "--workflows", "2"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "dewe-v2" in out
    assert "makespan_s" in out


def test_run_cli_pegasus_multi_node(capsys):
    rc = main_run(
        ["--engine", "pegasus", "--size", "0.5", "--nodes", "2"]
    )
    assert rc == 0
    assert "pegasus" in capsys.readouterr().out


def test_run_cli_ligo(capsys):
    rc = main_run(["--workflow", "ligo", "--size", "6"])
    assert rc == 0
    assert "dewe-v2" in capsys.readouterr().out


def test_run_cli_rejects_unknown_engine():
    with pytest.raises(SystemExit):
        main_run(["--engine", "slurm"])


def test_plan_cli_table3(capsys):
    rc = main_plan([])
    assert rc == 0
    out = capsys.readouterr().out
    assert "c3.8xlarge" in out and "i2.8xlarge" in out
    assert "deadline_ok" in out


def test_plan_cli_custom_index(capsys):
    rc = main_plan(["--workflows", "10", "--deadline", "3600",
                    "--instance-types", "c3.8xlarge", "--index", "0.002"])
    assert rc == 0
    assert "c3.8xlarge" in capsys.readouterr().out


def test_profile_cli(capsys):
    rc = main_profile(["--degree", "0.5", "--workflows", "6", "--max-nodes", "3"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "single-node (Fig 5a):" in out
    assert "converged node performance index" in out


def test_run_cli_export(tmp_path, capsys):
    rc = main_run(["--size", "0.5", "--export-dir", str(tmp_path / "out")])
    assert rc == 0
    out_dir = tmp_path / "out"
    assert (out_dir / "trace.json").exists()
    assert (out_dir / "timeline.svg").exists()
    assert (out_dir / "metrics.csv").exists()
    assert "exported" in capsys.readouterr().out


# -- repro-lint ------------------------------------------------------------

def test_lint_cli_clean_montage(capsys):
    from repro.cli import main_lint

    rc = main_lint(["--workflow", "montage", "--size", "0.5"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "0 error(s), 0 warning(s)" in out


def test_lint_cli_hotspot_is_info_only(capsys):
    from repro.cli import main_lint

    rc = main_lint(["--workflow", "montage", "--size", "1.0",
                    "--hotspot-fanout", "1"])
    assert rc == 0  # INFO notes never fail the lint
    assert "FS001" in capsys.readouterr().out


def test_lint_cli_json_format(capsys):
    import json

    from repro.cli import main_lint

    rc = main_lint(["--size", "0.5", "--format", "json"])
    assert rc == 0
    data = json.loads(capsys.readouterr().out)
    assert data["counts"] == {"error": 0, "warning": 0, "info": 0}


def test_lint_cli_rejects_unknown_ignore(capsys):
    from repro.cli import main_lint

    rc = main_lint(["--ignore", "ZZ999"])
    assert rc == 2
    assert "unknown rule id" in capsys.readouterr().err


def test_lint_cli_file_with_seeded_defect(tmp_path, capsys):
    from repro.cli import main_lint
    from repro.workflow import DataFile, Workflow
    from repro.workflow.serialize import save_json

    wf = Workflow("broken")
    ghost = DataFile("ghost.dat", 5.0)
    out = DataFile("out.dat", 1.0, "output")
    wf.new_job("user", "use", runtime=1.0, inputs=[ghost], outputs=[out])
    path = tmp_path / "broken.json"
    save_json(wf, path)

    rc = main_lint(["--file", str(path)])
    assert rc == 2  # DF001 is an error
    assert "DF001" in capsys.readouterr().out


def test_lint_cli_code_mode_clean_repo(capsys):
    from repro.cli import main_lint

    rc = main_lint(["--code"])
    assert rc == 0
    assert "0 finding(s)" in capsys.readouterr().out


def test_lint_cli_code_mode_flags_violation(tmp_path, capsys):
    from repro.cli import main_lint

    bad = tmp_path / "repro" / "sim" / "bad.py"
    bad.parent.mkdir(parents=True)
    bad.write_text("import time\nstamp = time.time()\n")
    rc = main_lint(["--code", str(bad)])
    assert rc == 1
    assert "CL001" in capsys.readouterr().out


def test_run_cli_lint_preflight(capsys):
    rc = main_run(["--size", "0.5", "--lint"])
    assert rc == 0
    assert "makespan_s" in capsys.readouterr().out


def test_validation_error_render_verbose():
    from repro.workflow import ValidationError

    problems = [f"job{i}: unknown parent 'ghost{i}'" for i in range(8)]
    exc = ValidationError("wf", problems)
    short = exc.render(verbose=False)
    assert "8 problem(s)" in short
    assert "... and 3 more" in short
    full = exc.render(verbose=True)
    assert full.count("unknown parent") == 8
    assert "more (use --verbose" not in full
