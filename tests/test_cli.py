"""Tests for the command-line entry points."""

import pytest

from repro.cli import main_plan, main_profile, main_run


def test_run_cli_dewe(capsys):
    rc = main_run(["--workflow", "montage", "--size", "0.5", "--workflows", "2"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "dewe-v2" in out
    assert "makespan_s" in out


def test_run_cli_pegasus_multi_node(capsys):
    rc = main_run(
        ["--engine", "pegasus", "--size", "0.5", "--nodes", "2"]
    )
    assert rc == 0
    assert "pegasus" in capsys.readouterr().out


def test_run_cli_ligo(capsys):
    rc = main_run(["--workflow", "ligo", "--size", "6"])
    assert rc == 0
    assert "dewe-v2" in capsys.readouterr().out


def test_run_cli_rejects_unknown_engine():
    with pytest.raises(SystemExit):
        main_run(["--engine", "slurm"])


def test_plan_cli_table3(capsys):
    rc = main_plan([])
    assert rc == 0
    out = capsys.readouterr().out
    assert "c3.8xlarge" in out and "i2.8xlarge" in out
    assert "deadline_ok" in out


def test_plan_cli_custom_index(capsys):
    rc = main_plan(["--workflows", "10", "--deadline", "3600",
                    "--instance-types", "c3.8xlarge", "--index", "0.002"])
    assert rc == 0
    assert "c3.8xlarge" in capsys.readouterr().out


def test_profile_cli(capsys):
    rc = main_profile(["--degree", "0.5", "--workflows", "6", "--max-nodes", "3"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "single-node (Fig 5a):" in out
    assert "converged node performance index" in out


def test_run_cli_export(tmp_path, capsys):
    rc = main_run(["--size", "0.5", "--export-dir", str(tmp_path / "out")])
    assert rc == 0
    out_dir = tmp_path / "out"
    assert (out_dir / "trace.json").exists()
    assert (out_dir / "timeline.svg").exists()
    assert (out_dir / "metrics.csv").exists()
    assert "exported" in capsys.readouterr().out
