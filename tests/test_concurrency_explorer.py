"""The seeded schedule explorer: exhaustive, PCT sampling, shrinking.

Determinism is the contract under test: the same scenario and seed must
produce byte-identical exploration outcomes, and any failure must be a
replayable schedule that still fails when replayed.
"""

from repro.analysis.concurrency.explorer import (
    Explorer,
    replay_picker,
    shrink_schedule,
)
from repro.analysis.concurrency.scenarios import SCENARIOS, get_scenario

import pytest


def explorer_for(name: str) -> Explorer:
    return Explorer(get_scenario(name).build)


def test_scenario_registry():
    assert set(SCENARIOS) == {
        "counter-locked",
        "counter-racy",
        "ack-reorder",
        "lock-order",
        "pipeline",
    }
    with pytest.raises(KeyError, match="unknown scenario"):
        get_scenario("nope")


def test_exhaustive_finds_lost_update():
    outcome = explorer_for("counter-racy").explore_exhaustive(
        max_schedules=200
    )
    assert outcome.found_bug
    assert "lost update" in outcome.failure.failure


def test_exhaustive_clean_counter_survives_budget():
    outcome = explorer_for("counter-locked").explore_exhaustive(
        max_schedules=200
    )
    assert not outcome.found_bug


def test_exhaustive_pipeline_is_complete_and_clean():
    outcome = explorer_for("pipeline").explore_exhaustive(max_schedules=200)
    assert not outcome.found_bug
    assert outcome.complete  # the whole state space fit in the budget


def test_exhaustive_finds_deadlock():
    outcome = explorer_for("lock-order").explore_exhaustive(max_schedules=200)
    assert outcome.found_bug
    assert "deadlock" in outcome.failure.failure


def test_pct_sampling_finds_ack_reorder():
    outcome = explorer_for("ack-reorder").explore_random(seed=0, schedules=50)
    assert outcome.found_bug
    assert "completed" in outcome.failure.failure


def test_random_exploration_is_deterministic_per_seed():
    results = []
    for _ in range(2):
        outcome = explorer_for("counter-racy").explore_random(
            seed=7, schedules=50
        )
        results.append(
            (
                outcome.found_bug,
                outcome.schedules_run,
                outcome.failure.schedule if outcome.failure else None,
                outcome.failure.trace if outcome.failure else None,
            )
        )
    assert results[0] == results[1]


def test_different_seeds_may_differ_but_both_reproduce():
    exp = explorer_for("counter-racy")
    a = exp.explore_random(seed=1, schedules=50)
    b = exp.explore_random(seed=2, schedules=50)
    for outcome in (a, b):
        assert outcome.found_bug
        replay = exp.run_once(replay_picker(outcome.failure.schedule))
        assert replay.failure == outcome.failure.failure


def test_shrinking_reduces_switches_and_still_fails():
    exp = explorer_for("counter-racy")
    outcome = exp.explore_exhaustive(max_schedules=200)
    assert outcome.found_bug
    shrunk = shrink_schedule(exp, outcome.failure)
    assert shrunk.failed
    assert shrunk.switches <= outcome.failure.switches
    # The shrunken schedule is a full reproduction recipe.
    replay = exp.run_once(replay_picker(shrunk.schedule))
    assert replay.failed
    assert replay.failure == shrunk.failure


def test_shrinking_is_deterministic():
    exp = explorer_for("counter-racy")
    outcome = exp.explore_exhaustive(max_schedules=200)
    a = shrink_schedule(exp, outcome.failure)
    b = shrink_schedule(exp, outcome.failure)
    assert a.schedule == b.schedule
    assert a.failure == b.failure


def test_minimal_counter_race_needs_two_switches():
    """The lost update fundamentally needs w1 -> w2 -> w1 (or mirror):
    shrinking must land on exactly two context switches."""
    exp = explorer_for("counter-racy")
    outcome = exp.explore_exhaustive(max_schedules=200)
    shrunk = shrink_schedule(exp, outcome.failure)
    assert shrunk.switches == 2


def test_render_trace_names_threads_and_ops():
    exp = explorer_for("counter-racy")
    outcome = exp.explore_exhaustive(max_schedules=200)
    rendered = outcome.failure.render_trace()
    assert "w1:" in rendered or "w2:" in rendered
    assert "lost update" in rendered


def test_replay_picker_fills_gaps():
    """A truncated schedule still replays to completion (the picker falls
    back to the first enabled thread past the prefix)."""
    exp = explorer_for("pipeline")
    result = exp.run_once(replay_picker([0]))
    assert not result.failed
    assert len(result.schedule) > 1
