"""Round-trip tests for JSON and DAX serialization."""

import pytest

from repro.generators import ligo_workflow, montage_workflow
from repro.workflow import Workflow
from repro.workflow.serialize import (
    FORMAT_VERSION,
    load_dax,
    load_json,
    save_dax,
    save_json,
    workflow_from_dict,
    workflow_to_dict,
)


def assert_same_structure(a: Workflow, b: Workflow) -> None:
    assert a.name == b.name
    assert set(a.jobs) == set(b.jobs)
    for job_id, job in a.jobs.items():
        other = b.job(job_id)
        assert other.task_type == job.task_type
        assert other.runtime == pytest.approx(job.runtime)
        assert other.threads == job.threads
        assert other.timeout == job.timeout
        assert other.max_attempts == job.max_attempts
        assert sorted(other.parents) == sorted(job.parents)
        assert [(f.name, f.size, f.kind) for f in other.inputs] == [
            (f.name, f.size, f.kind) for f in job.inputs
        ]
        assert [(f.name, f.size, f.kind) for f in other.outputs] == [
            (f.name, f.size, f.kind) for f in job.outputs
        ]


def test_dict_round_trip_montage():
    wf = montage_workflow(degree=0.5, jitter=0.05, seed=9)
    assert_same_structure(wf, workflow_from_dict(workflow_to_dict(wf)))


def test_json_round_trip(tmp_path):
    wf = ligo_workflow(blocks=6, group=3)
    path = tmp_path / "wf.json"
    save_json(wf, path)
    assert_same_structure(wf, load_json(path))


def test_dax_round_trip(tmp_path):
    wf = montage_workflow(degree=0.5)
    path = tmp_path / "wf.dax"
    save_dax(wf, path)
    assert_same_structure(wf, load_dax(path))


def test_dax_preserves_timeout_and_threads(tmp_path):
    wf = Workflow("w")
    wf.new_job("a", "t", runtime=1.5, threads=4, timeout=60.0)
    path = tmp_path / "wf.dax"
    save_dax(wf, path)
    restored = load_dax(path)
    job = restored.job("a")
    assert job.threads == 4
    assert job.timeout == pytest.approx(60.0)


def test_dax_rejects_non_dax(tmp_path):
    path = tmp_path / "bad.xml"
    path.write_text("<notadag></notadag>")
    with pytest.raises(ValueError, match="not a DAX"):
        load_dax(path)


def test_dict_round_trip_preserves_retry_metadata():
    wf = Workflow("w")
    wf.new_job("a", "t", runtime=1.0, max_attempts=3)
    wf.new_job("b", "t", runtime=1.0)  # no per-job budget
    data = workflow_to_dict(wf)
    assert data["version"] == FORMAT_VERSION
    assert data["jobs"][0]["max_attempts"] == 3
    restored = workflow_from_dict(data)
    assert restored.job("a").max_attempts == 3
    assert restored.job("b").max_attempts is None
    assert_same_structure(wf, restored)


def test_dax_round_trip_preserves_retry_metadata(tmp_path):
    wf = Workflow("w")
    wf.new_job("a", "t", runtime=1.0, max_attempts=5)
    wf.new_job("b", "t", runtime=1.0)
    path = tmp_path / "wf.dax"
    save_dax(wf, path)
    restored = load_dax(path)
    assert restored.job("a").max_attempts == 5
    assert restored.job("b").max_attempts is None


def test_version_1_documents_still_load():
    """Pre-versioning payloads (no "version" key) must keep loading."""
    wf = montage_workflow(degree=0.5)
    data = workflow_to_dict(wf)
    del data["version"]
    for spec in data["jobs"]:
        del spec["max_attempts"]
    assert_same_structure(wf, workflow_from_dict(data))


def test_future_version_rejected():
    data = workflow_to_dict(Workflow("w"))
    data["version"] = FORMAT_VERSION + 1
    with pytest.raises(ValueError, match="version"):
        workflow_from_dict(data)


def test_round_trip_shares_file_objects():
    """A file produced by one job and consumed by another must be a single
    object after deserialization (engines rely on identity for caching)."""
    wf = montage_workflow(degree=0.5)
    restored = workflow_from_dict(workflow_to_dict(wf))
    concat = restored.job("mConcatFit")
    bg = restored.job("mBgModel")
    assert concat.outputs[0] is bg.inputs[0]
