"""Integration tests for the chaos engine: fault models, message chaos,
retry/dead-letter recovery in both execution paths, and the harness."""

import dataclasses
import pytest

from repro.cloud import ClusterSpec
from repro.dewe import DeweConfig, MasterDaemon, WorkerDaemon, submit_workflow
from repro.engines import PullEngine, RunConfig
from repro.faults import RetryPolicy
from repro.faults.chaos import SCENARIOS, get_scenario, run_chaos
from repro.faults.models import (
    Degradation,
    FaultTrace,
    SpotTerminationModel,
    StragglerModel,
    TransientFaultModel,
)
from repro.generators import montage_workflow
from repro.mq import Broker, ChaosBroker, MessageChaos, TOPIC_ACK
from repro.mq.messages import AckKind, JobAck
from repro.workflow import Ensemble, Workflow


def small_spec(n_nodes: int = 1) -> ClusterSpec:
    fs = "local" if n_nodes == 1 else "moosefs"
    return ClusterSpec("c3.8xlarge", n_nodes, filesystem=fs)


def fast_cfg(timeout: float = 6.0) -> RunConfig:
    return RunConfig(
        default_timeout=timeout, timeout_check_interval=0.25, record_jobs=False
    )


# -- fault model construction ------------------------------------------------
def test_spot_model_sampling_is_seed_deterministic():
    a = SpotTerminationModel.sample(7, 8, 3600.0, rate_per_hour=30.0)
    b = SpotTerminationModel.sample(7, 8, 3600.0, rate_per_hour=30.0)
    c = SpotTerminationModel.sample(8, 8, 3600.0, rate_per_hour=30.0)
    assert a.terminations == b.terminations
    assert a.terminations != c.terminations


def test_spot_model_respects_protection():
    model = SpotTerminationModel.sample(
        1, 4, 3600.0, rate_per_hour=10_000.0, protected=(0, 1)
    )
    assert {node for _t, node in model.terminations} <= {2, 3}


def test_transient_model_poison_and_retry_independence():
    model = TransientFaultModel(p_fail=0.5, seed=3, poison=("bad",))
    assert model.should_fail("wf", "bad", 1)
    assert model.should_fail("wf", "bad", 99)
    # Fresh draw per attempt: a transiently failing job eventually passes.
    outcomes = {model.should_fail("wf", "jobX", k) for k in range(1, 20)}
    assert outcomes == {True, False}
    # Pure function of the arguments.
    assert model.should_fail("wf", "jobX", 1) == model.should_fail("wf", "jobX", 1)


def test_straggler_model_rejects_overlap():
    with pytest.raises(ValueError, match="overlap"):
        StragglerModel(
            [
                Degradation(0, 0.0, 10.0, disk_factor=0.5),
                Degradation(0, 5.0, 10.0, disk_factor=0.5),
            ]
        )


def test_message_chaos_validation():
    with pytest.raises(ValueError):
        MessageChaos(p_drop=1.5)
    with pytest.raises(ValueError):
        MessageChaos(p_drop=0.6, p_duplicate=0.6)
    with pytest.raises(ValueError):
        MessageChaos(delay=-1.0)
    assert MessageChaos(topics=("job-acknowledgment",)).applies_to(
        "job-acknowledgment"
    )
    assert not MessageChaos(topics=("job-acknowledgment",)).applies_to("other")


# -- poison jobs: no livelock (simulated engine) -----------------------------
def test_sim_poison_job_dead_letters_and_run_settles():
    template = montage_workflow(degree=0.3)
    engine = PullEngine(
        small_spec(),
        config=fast_cfg(),
        retry=RetryPolicy(max_attempts=2),
        transient=TransientFaultModel(poison=("mBgModel",)),
    )
    result = engine.run(Ensemble([template]))
    counts = next(iter(result.job_counts.values()))
    assert counts["queued"] == counts["running"] == counts["waiting"] == 0
    assert counts["dead"] >= 2  # the poison job and its descendants
    assert counts["completed"] + counts["dead"] == len(template)
    direct = [e for e in result.dead_letters if e.reason != "upstream-dead"]
    assert [(e.job_id, e.attempts) for e in direct] == [("mBgModel", 2)]
    assert {e.kind for e in result.fault_events} >= {
        "transient-failure",
        "dead-letter",
    }


# -- poison jobs: no livelock (threaded master) ------------------------------
def test_threaded_poison_job_dead_letters_and_rest_completes():
    broker = Broker()
    config = DeweConfig(default_timeout=5.0)
    retry = RetryPolicy(max_attempts=2, base_delay=0.01)

    wf = Workflow("poison-wf")
    wf.new_job("good", "compute")
    wf.new_job("bad", "compute", action=lambda: 1 / 0)
    wf.new_job("never", "collect")
    wf.add_dependency("bad", "never")

    with MasterDaemon(broker, config, retry=retry) as master:
        with WorkerDaemon(broker, config=config, name="w1"):
            submit_workflow(broker, wf)
            assert master.wait("poison-wf", timeout=10.0)  # settles, no livelock
        state = master.states["poison-wf"]
        assert state.is_settled and not state.is_complete
        assert state.status["good"].value == "completed"
        reasons = {e.job_id: e.reason for e in master.dead_letters}
        assert reasons == {"bad": "failed", "never": "upstream-dead"}
        assert state.attempt["bad"] == 2  # budget spent before dead-letter


def test_threaded_duplicated_acks_complete_exactly_once():
    chaos = MessageChaos(p_duplicate=1.0, seed=5, topics=(TOPIC_ACK,))
    broker = ChaosBroker(chaos)
    config = DeweConfig(default_timeout=5.0)

    wf = Workflow("dup-wf")
    wf.new_job("a", "compute")
    wf.new_job("b", "compute")
    wf.add_dependency("a", "b")

    with MasterDaemon(broker, config) as master:
        with WorkerDaemon(broker, config=config, name="w1"):
            submit_workflow(broker, wf)
            assert master.wait("dup-wf", timeout=10.0)
        state = master.states["dup-wf"]
        assert state.is_complete
        assert state.n_completed == 2  # not double-counted
        assert state.duplicate_acks > 0  # duplicates arrived and were dropped
        assert broker.chaos_stats()["duplicated"] > 0


def test_threaded_unknown_workflow_acks_are_counted():
    broker = Broker()
    with MasterDaemon(broker) as master:
        broker.publish(
            TOPIC_ACK,
            JobAck(workflow_name="ghost", job_id="x", kind=AckKind.COMPLETED),
        )
        import time

        deadline = time.monotonic() + 5.0
        while master.dropped_acks == 0 and time.monotonic() < deadline:
            time.sleep(0.01)
        assert master.dropped_acks == 1
        assert "ghost" not in master.states


# -- message chaos in the simulator ------------------------------------------
def test_sim_duplicated_messages_never_double_complete():
    template = montage_workflow(degree=0.3)
    engine = PullEngine(
        small_spec(),
        config=fast_cfg(),
        message_chaos=MessageChaos(p_duplicate=0.5, seed=11),
    )
    result = engine.run(Ensemble([template]))
    counts = next(iter(result.job_counts.values()))
    assert counts["completed"] == len(template)
    assert counts["dead"] == 0
    assert result.mq_chaos_stats["duplicated"] > 0


def test_sim_dropped_messages_recovered_by_dispatch_deadline():
    template = montage_workflow(degree=0.3)
    engine = PullEngine(
        small_spec(),
        config=fast_cfg(timeout=3.0),
        retry=RetryPolicy(redispatch_lost=True, max_attempts=10),
        message_chaos=MessageChaos(p_drop=0.15, seed=2),
    )
    result = engine.run(Ensemble([template]))
    counts = next(iter(result.job_counts.values()))
    assert counts["completed"] == len(template)
    assert result.mq_chaos_stats["dropped"] > 0
    assert result.resubmissions > 0  # the recovery path actually fired


# -- spot terminations and billing -------------------------------------------
def test_spot_termination_interrupts_lease_and_bills_spot_rule():
    template = montage_workflow(degree=0.5)
    baseline = PullEngine(small_spec(2), config=fast_cfg()).run(
        Ensemble([template])
    )
    t_kill = baseline.makespan * 0.5
    engine = PullEngine(
        small_spec(2),
        config=fast_cfg(),
        chaos_models=(
            SpotTerminationModel([(t_kill, 1)], notice=0.5),
        ),
        fault_trace=FaultTrace(),
    )
    result = engine.run(Ensemble([template]))
    counts = next(iter(result.job_counts.values()))
    assert counts["completed"] == len(template)  # node 0 finishes the work
    assert {e.kind for e in result.fault_events} == {
        "spot-notice",
        "spot-termination",
    }
    # Node 1's lease ends at the kill and is billed with the
    # partial-hour-free spot rule: a sub-hour lease costs nothing.
    assert 1 in result.interrupted_spans
    (start, end), = result.interrupted_spans[1]
    # The lease closes between the notice (idle slots drain immediately)
    # and the termination itself.
    assert t_kill - 0.5 - 1e-6 <= end <= t_kill + 1e-6
    assert result.elastic_cost() < result.cost()


def test_spot_replacement_restores_capacity():
    template = montage_workflow(degree=0.5)
    engine = PullEngine(
        small_spec(2),
        config=fast_cfg(),
        chaos_models=(
            SpotTerminationModel([(1.0, 1)], notice=0.0, replacement_delay=0.5),
        ),
    )
    result = engine.run(Ensemble([template]))
    assert len(result.rental_spans[1]) == 2  # original lease + replacement
    kinds = [e.kind for e in result.fault_events]
    assert kinds.count("spot-termination") == 1
    assert kinds.count("spot-replacement") == 1


# -- stragglers ---------------------------------------------------------------
def test_degraded_node_slows_the_run_but_completes():
    template = montage_workflow(degree=0.5)
    baseline = PullEngine(small_spec(), config=fast_cfg()).run(
        Ensemble([template])
    )
    degraded = PullEngine(
        small_spec(),
        config=fast_cfg(timeout=60.0),
        chaos_models=(
            StragglerModel(
                [
                    Degradation(
                        0, 0.0, 10_000.0, disk_factor=0.05, cpu_factor=0.25
                    )
                ]
            ),
        ),
    ).run(Ensemble([template]))
    assert degraded.makespan > baseline.makespan * 2.0
    counts = next(iter(degraded.job_counts.values()))
    assert counts["completed"] == len(template)
    kinds = [e.kind for e in degraded.fault_events]
    assert kinds.count("degrade-start") == 1


# -- the harness --------------------------------------------------------------
def test_builtin_scenarios_hold_invariants_and_are_deterministic():
    for name in sorted(SCENARIOS):
        first = run_chaos(SCENARIOS[name])
        second = run_chaos(SCENARIOS[name])
        assert first.ok, f"{name}: {first.problems}"
        assert first.trace_text == second.trace_text, name
        assert first.makespan == second.makespan, name


def test_scenario_seed_override_changes_the_trace():
    scenario = get_scenario("smoke")
    base = run_chaos(scenario)
    other = run_chaos(scenario, seed=1234)
    assert base.seed == 0 and other.seed == 1234
    assert base.trace_text != other.trace_text


def test_get_scenario_unknown_name():
    with pytest.raises(KeyError, match="built-ins"):
        get_scenario("no-such-scenario")


def test_chaos_cli_smoke_and_list():
    from repro.cli import main_chaos

    assert main_chaos(["--list"]) == 0
    assert main_chaos(["--scenario", "smoke"]) == 0


def test_chaos_cli_exits_nonzero_on_invariant_failure(monkeypatch, capsys):
    """Regression: a violated recovery invariant must fail the process
    (exit 1), not just print — CI depends on it."""
    import repro.faults.chaos as chaos_mod
    from repro.cli import main_chaos

    # A scenario that *expects* a dead letter that never happens: the
    # dead-letter accounting invariant fails deterministically.
    broken = dataclasses.replace(
        get_scenario("smoke"), name="smoke", expect_dead=("mBgModel",)
    )
    monkeypatch.setitem(chaos_mod.SCENARIOS, "smoke", broken)
    assert main_chaos(["--scenario", "smoke"]) == 1
    assert "INVARIANT VIOLATED" in capsys.readouterr().out


def test_chaos_cli_exits_nonzero_on_determinism_divergence(monkeypatch, capsys):
    import repro.faults.chaos as chaos_mod
    from repro.cli import main_chaos

    real_run = chaos_mod.run_chaos
    calls = []

    def flaky_run(scenario, seed=None):
        report = real_run(scenario, seed=seed)
        calls.append(report)
        if len(calls) % 2 == 0:  # second run of each pair "diverges"
            report.trace_text += "\nghost-event"
        return report

    monkeypatch.setattr(chaos_mod, "run_chaos", flaky_run)
    assert main_chaos(["--scenario", "smoke", "--check-determinism"]) == 1
    assert "diverged" in capsys.readouterr().out


def test_chaos_cli_crash_at_and_journal_export(tmp_path, capsys):
    from repro.cli import main_chaos

    path = tmp_path / "journal.jsonl"
    assert main_chaos(
        ["--scenario", "smoke", "--crash-at", "20", "--journal", str(path)]
    ) == 0
    out = capsys.readouterr().out
    assert "1 crash(es) survived" in out
    assert path.exists() and path.read_text().strip()


def test_chaos_cli_journal_without_crash_is_usage_error(tmp_path, capsys):
    from repro.cli import main_chaos

    path = tmp_path / "journal.jsonl"
    assert main_chaos(["--scenario", "smoke", "--journal", str(path)]) == 2
    assert not path.exists()


# -- monitor export ------------------------------------------------------------
def test_chrome_trace_carries_fault_instants():
    from repro.monitor import to_chrome_trace

    template = montage_workflow(degree=0.3)
    engine = PullEngine(
        small_spec(2),
        config=RunConfig(
            default_timeout=6.0, timeout_check_interval=0.25, record_jobs=True
        ),
        chaos_models=(SpotTerminationModel([(1.0, 1)], notice=0.2),),
    )
    result = engine.run(Ensemble([template]))
    doc = to_chrome_trace(result)
    faults = [e for e in doc["traceEvents"] if e.get("cat") == "fault"]
    assert {e["name"] for e in faults} == {"spot-notice", "spot-termination"}
    assert all(e["ph"] == "i" for e in faults)
    assert {e["pid"] for e in faults} == {1}
