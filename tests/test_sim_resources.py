"""Unit tests for CorePool, FairShareLink, FifoStore and SegmentLog."""

import numpy as np
import pytest

from repro.sim import CorePool, FairShareLink, FifoStore, SegmentLog, Simulator
from repro.sim.engine import SimulationError

# ---------------------------------------------------------------------------
# SegmentLog
# ---------------------------------------------------------------------------


def test_segment_log_integrate_simple():
    log = SegmentLog(0.0, 0.0)
    log.record(1.0, 2.0)
    log.record(3.0, 0.0)
    # 0 on [0,1), 2 on [1,3), 0 after
    assert log.integrate(4.0) == pytest.approx(4.0)
    assert log.integrate(2.0) == pytest.approx(2.0)
    assert log.integrate(0.5) == pytest.approx(0.0)


def test_segment_log_dedupes_equal_values():
    log = SegmentLog(0.0, 1.0)
    log.record(2.0, 1.0)
    assert len(log.times) == 1


def test_segment_log_same_instant_overwrite():
    log = SegmentLog(0.0, 0.0)
    log.record(1.0, 5.0)
    log.record(1.0, 7.0)
    assert log.times == [0.0, 1.0]
    assert log.values == [0.0, 7.0]


def test_segment_log_same_instant_collapse_back():
    log = SegmentLog(0.0, 3.0)
    log.record(1.0, 5.0)
    log.record(1.0, 3.0)  # back to previous value: change point vanishes
    assert log.times == [0.0]
    assert log.values == [3.0]


def test_segment_log_time_backwards_raises():
    log = SegmentLog(0.0, 0.0)
    log.record(5.0, 1.0)
    with pytest.raises(ValueError):
        log.record(4.0, 2.0)


def test_segment_log_sample_bucket_means():
    log = SegmentLog(0.0, 0.0)
    log.record(1.0, 4.0)
    log.record(2.0, 0.0)
    times, means = log.sample(t_end=4.0, dt=2.0)
    assert times.tolist() == [0.0, 2.0]
    # Bucket [0,2): half at 0, half at 4 -> mean 2.  Bucket [2,4): 0.
    assert means == pytest.approx([2.0, 0.0])


def test_segment_log_sample_partial_last_bucket():
    log = SegmentLog(0.0, 6.0)
    times, means = log.sample(t_end=5.0, dt=2.0)
    assert len(times) == 3
    assert means == pytest.approx([6.0, 6.0, 6.0])


def test_segment_log_sample_empty_range():
    log = SegmentLog(0.0, 1.0)
    times, means = log.sample(t_end=0.0, dt=1.0)
    assert times.size == 0 and means.size == 0


# ---------------------------------------------------------------------------
# CorePool
# ---------------------------------------------------------------------------


def test_core_pool_grants_up_to_capacity():
    sim = Simulator()
    pool = CorePool(sim, 2)
    grants = []

    def proc(name, hold):
        yield pool.acquire()
        grants.append((name, sim.now))
        yield sim.timeout(hold)
        pool.release()

    sim.process(proc("a", 5.0))
    sim.process(proc("b", 5.0))
    sim.process(proc("c", 1.0))
    sim.run()
    assert grants == [("a", 0.0), ("b", 0.0), ("c", 5.0)]


def test_core_pool_fifo_order():
    sim = Simulator()
    pool = CorePool(sim, 1)
    order = []

    def proc(name):
        yield pool.acquire()
        order.append(name)
        yield sim.timeout(1.0)
        pool.release()

    for name in "abcd":
        sim.process(proc(name))
    sim.run()
    assert order == list("abcd")


def test_core_pool_busy_log_tracks_utilisation():
    sim = Simulator()
    pool = CorePool(sim, 4)

    def proc():
        yield pool.acquire()
        yield sim.timeout(10.0)
        pool.release()

    sim.process(proc())
    sim.process(proc())
    sim.run()
    # 2 cores busy for 10 s -> 20 core-seconds
    assert pool.log.integrate(sim.now) == pytest.approx(20.0)
    assert pool.busy == 0


def test_core_pool_release_without_acquire_raises():
    sim = Simulator()
    pool = CorePool(sim, 1)
    with pytest.raises(SimulationError):
        pool.release()


def test_core_pool_cancel_queued_acquire():
    sim = Simulator()
    pool = CorePool(sim, 1)
    granted = []

    def holder():
        yield pool.acquire()
        yield sim.timeout(10.0)
        pool.release()

    sim.process(holder())
    sim.run(until=1.0)
    req = pool.acquire()  # queued behind holder
    assert pool.cancel(req)

    def late():
        yield pool.acquire()
        granted.append(sim.now)
        pool.release()

    sim.process(late())
    sim.run()
    # The cancelled request must be skipped; `late` gets the core at t=10.
    assert granted == [10.0]


def test_core_pool_capacity_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        CorePool(sim, 0)


# ---------------------------------------------------------------------------
# FairShareLink
# ---------------------------------------------------------------------------


def test_link_single_transfer_rate():
    sim = Simulator()
    link = FairShareLink(sim, capacity=100.0)
    done = []

    def proc():
        yield link.transfer(500.0)
        done.append(sim.now)

    sim.process(proc())
    sim.run()
    assert done == [pytest.approx(5.0)]


def test_link_equal_sharing_two_streams():
    sim = Simulator()
    link = FairShareLink(sim, capacity=100.0)
    done = {}

    def proc(name, nbytes):
        yield link.transfer(nbytes)
        done[name] = sim.now

    sim.process(proc("a", 100.0))
    sim.process(proc("b", 100.0))
    sim.run()
    # Both share 100 B/s -> each runs at 50 B/s -> both finish at t=2.
    assert done["a"] == pytest.approx(2.0)
    assert done["b"] == pytest.approx(2.0)


def test_link_processor_sharing_unequal_sizes():
    sim = Simulator()
    link = FairShareLink(sim, capacity=100.0)
    done = {}

    def proc(name, nbytes):
        yield link.transfer(nbytes)
        done[name] = sim.now

    sim.process(proc("small", 100.0))
    sim.process(proc("big", 300.0))
    sim.run()
    # Shared until small finishes: each got 100 B at t=2.  Then big runs
    # alone for its remaining 200 B -> finishes at t=4.
    assert done["small"] == pytest.approx(2.0)
    assert done["big"] == pytest.approx(4.0)


def test_link_late_arrival_shares_remaining():
    sim = Simulator()
    link = FairShareLink(sim, capacity=100.0)
    done = {}

    def proc(name, start, nbytes):
        yield sim.timeout(start)
        yield link.transfer(nbytes)
        done[name] = sim.now

    sim.process(proc("first", 0.0, 300.0))
    sim.process(proc("second", 1.0, 100.0))
    sim.run()
    # first alone [0,1): 100 B done.  Shared at 50 B/s each until second
    # gets 100 B at t=3 (first now has 200 B).  First finishes remaining
    # 100 B alone at t=4.
    assert done["second"] == pytest.approx(3.0)
    assert done["first"] == pytest.approx(4.0)


def test_link_zero_byte_transfer_completes_immediately():
    sim = Simulator()
    link = FairShareLink(sim, capacity=10.0)
    ev = link.transfer(0.0)
    assert ev.triggered


def test_link_negative_transfer_raises():
    sim = Simulator()
    link = FairShareLink(sim, capacity=10.0)
    with pytest.raises(ValueError):
        link.transfer(-1.0)


def test_link_capacity_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        FairShareLink(sim, capacity=0.0)


def test_link_throughput_log_full_capacity_when_busy():
    sim = Simulator()
    link = FairShareLink(sim, capacity=100.0)

    def proc():
        yield link.transfer(200.0)
        yield sim.timeout(3.0)  # idle gap
        yield link.transfer(100.0)

    sim.process(proc())
    sim.run()
    # Busy [0,2) and [5,6): total bytes = 300.
    assert link.log.integrate(sim.now) == pytest.approx(300.0)
    assert sim.now == pytest.approx(6.0)


def test_link_conservation_many_streams():
    sim = Simulator()
    link = FairShareLink(sim, capacity=57.0)
    sizes = [13.0, 99.0, 1.0, 250.0, 40.0, 40.0, 7.5]
    finish = []

    def proc(nbytes, start):
        yield sim.timeout(start)
        yield link.transfer(nbytes)
        finish.append(sim.now)

    for i, size in enumerate(sizes):
        sim.process(proc(size, start=i * 0.5))
    sim.run()
    # Work conservation: all bytes drained at capacity once saturated.
    assert link.log.integrate(sim.now) == pytest.approx(sum(sizes), rel=1e-6)
    assert max(finish) == pytest.approx(sim.now)


# ---------------------------------------------------------------------------
# FifoStore
# ---------------------------------------------------------------------------


def test_fifo_store_put_then_get():
    sim = Simulator()
    store = FifoStore(sim)
    store.put("x")
    got = []

    def proc():
        item = yield store.get()
        got.append(item)

    sim.process(proc())
    sim.run()
    assert got == ["x"]


def test_fifo_store_get_blocks_until_put():
    sim = Simulator()
    store = FifoStore(sim)
    got = []

    def consumer():
        item = yield store.get()
        got.append((item, sim.now))

    def producer():
        yield sim.timeout(4.0)
        store.put("late")

    sim.process(consumer())
    sim.process(producer())
    sim.run()
    assert got == [("late", 4.0)]


def test_fifo_store_order_preserved():
    sim = Simulator()
    store = FifoStore(sim)
    for i in range(5):
        store.put(i)
    got = []

    def consumer():
        for _ in range(5):
            item = yield store.get()
            got.append(item)

    sim.process(consumer())
    sim.run()
    assert got == [0, 1, 2, 3, 4]


def test_fifo_store_cancel_pending_get():
    sim = Simulator()
    store = FifoStore(sim)
    results = []

    def consumer():
        item = yield store.get()
        results.append(item)

    proc_get = store.get()
    assert store.cancel(proc_get)
    sim.process(consumer())
    store.put("only")
    sim.run()
    # The cancelled getter received None and must not steal the item.
    assert results == ["only"]
    assert len(store) == 0


def test_fifo_store_take_matching():
    sim = Simulator()
    store = FifoStore(sim)
    for item in (3, 5, 8, 5):
        store.put(item)
    assert store.take(lambda x: x == 5) == 5
    assert len(store) == 3
    # FIFO order of the rest is preserved.
    got = []

    def consumer():
        for _ in range(3):
            item = yield store.get()
            got.append(item)

    sim.process(consumer())
    sim.run()
    assert got == [3, 8, 5]


def test_fifo_store_take_no_match():
    sim = Simulator()
    store = FifoStore(sim)
    store.put(1)
    assert store.take(lambda x: x > 10) is None
    assert len(store) == 1


def test_fifo_store_take_empty():
    sim = Simulator()
    store = FifoStore(sim)
    assert store.take(lambda x: True) is None
