"""Tests for the SVG figure rendering."""

import xml.etree.ElementTree as ET

import pytest

from repro.cloud import ClusterSpec
from repro.engines import PullEngine
from repro.generators import montage_workflow
from repro.monitor.plot import PALETTE, svg_gantt, svg_line_chart
from repro.workflow import Ensemble

SVG_NS = "{http://www.w3.org/2000/svg}"


@pytest.fixture(scope="module")
def result():
    template = montage_workflow(degree=0.5)
    return PullEngine(ClusterSpec("c3.8xlarge", 1, filesystem="local")).run(
        Ensemble([template])
    )


def parse(svg: str) -> ET.Element:
    return ET.fromstring(svg)


def test_line_chart_is_valid_svg(tmp_path):
    path = tmp_path / "chart.svg"
    svg = svg_line_chart(
        {"c3": ([1, 2, 3], [10.0, 20.0, 30.0]), "i2": ([1, 2, 3], [8.0, 15.0, 22.0])},
        title="Fig 5a",
        xlabel="workflows",
        ylabel="seconds",
        path=path,
    )
    root = parse(svg)
    assert root.tag == f"{SVG_NS}svg"
    polylines = root.findall(f"{SVG_NS}polyline")
    assert len(polylines) == 2
    texts = [t.text for t in root.findall(f"{SVG_NS}text")]
    assert "Fig 5a" in texts
    assert "c3" in texts and "i2" in texts
    assert path.exists()


def test_line_chart_markers_match_points():
    svg = svg_line_chart({"s": ([0, 1, 2, 3], [1.0, 2.0, 1.5, 3.0])})
    root = parse(svg)
    assert len(root.findall(f"{SVG_NS}circle")) == 4


def test_line_chart_handles_constant_series():
    svg = svg_line_chart({"flat": ([0, 1], [5.0, 5.0])})
    assert "polyline" in svg


def test_line_chart_validation():
    with pytest.raises(ValueError):
        svg_line_chart({})
    with pytest.raises(ValueError):
        svg_line_chart({"empty": ([], [])})


def test_gantt_is_valid_svg(result, tmp_path):
    path = tmp_path / "gantt.svg"
    svg = svg_gantt(result, path=path)
    root = parse(svg)
    rects = root.findall(f"{SVG_NS}rect")
    # Background + at least one bar per record (I/O split adds more).
    assert len(rects) >= len(result.records)
    assert path.exists()


def test_gantt_colors_task_types(result):
    svg = svg_gantt(result)
    used_colors = {c for c in PALETTE if c in svg}
    n_types = len({r.task_type for r in result.records})
    assert len(used_colors) >= min(n_types, len(PALETTE)) - 1


def test_gantt_bars_within_canvas(result):
    svg = svg_gantt(result, width=500)
    root = parse(svg)
    for rect in root.findall(f"{SVG_NS}rect"):
        x = float(rect.get("x", "0"))
        w = float(rect.get("width", "0"))
        assert x + w <= 500 + 1e-6
