"""Simulation invariant sanitizer: violation injection and modes.

The conftest keeps a strict sanitizer active for every test; these tests
install their own (via ``sanitizer.enabled`` / ``enable``) so they can
corrupt simulator state on purpose without failing the ambient one.
"""

import pytest

import repro.analysis.sanitizer as sanitizer
from repro.analysis.sanitizer import InvariantViolation, Sanitizer
from repro.cloud.pricing import BillingModel, billed_hours
from repro.sim import CorePool, FairShareLink, SimulationError, Simulator
from repro.storage.cache import WriteBackCache


# -- modes and lifecycle ---------------------------------------------------

def test_disabled_by_default_outside_tests():
    previous = sanitizer.disable()
    try:
        assert sanitizer.active() is None
        # Hot paths see None and skip the checks entirely.
        sim = Simulator()
        pool = CorePool(sim, 2)
        pool.acquire()
        pool.release()
    finally:
        if previous is not None:
            sanitizer._ACTIVE = previous


def test_enable_disable_roundtrip():
    ambient = sanitizer.active()
    san = sanitizer.enable(strict=False)
    assert sanitizer.active() is san
    assert sanitizer.disable() is san
    assert sanitizer.active() is None
    sanitizer._ACTIVE = ambient


def test_enabled_context_manager_restores_previous():
    ambient = sanitizer.active()
    with sanitizer.enabled(strict=False) as san:
        assert sanitizer.active() is san
        assert not san.strict
    assert sanitizer.active() is ambient


def test_collect_mode_records_without_raising():
    san = Sanitizer(strict=False)
    san.check_schedule(now=5.0, delay=-1.0)
    san.check_schedule(now=6.0, delay=-2.0)
    assert len(san.violations) == 2
    assert san.violations[0].check == "clock-monotonicity"
    assert "t=5" in str(san.violations[0])


def test_strict_mode_raises_on_first_violation():
    san = Sanitizer(strict=True)
    with pytest.raises(InvariantViolation, match="clock-monotonicity"):
        san.check_step(now=10.0, event_time=9.0)
    assert len(san.violations) == 1


# -- clock -----------------------------------------------------------------

def test_clock_regression_detected():
    with sanitizer.enabled(strict=False) as san:
        sim = Simulator()
        sim.schedule_call(5.0, lambda: None)
        sim.now = 7.0  # corrupt the clock past the pending event
        sim.run()
    assert any(v.check == "clock-monotonicity" for v in san.violations)


def test_negative_delay_detected():
    """Timeout's own guard rejects honest negative delays, so corrupt the
    scheduling path underneath it the way a buggy resource could."""
    with sanitizer.enabled(strict=False) as san:
        sim = Simulator()
        event = sim.event()
        sim._schedule(-1.0, event)
    assert any(v.check == "clock-monotonicity" for v in san.violations)


# -- core pools ------------------------------------------------------------

def test_core_pool_overcommit_detected():
    with sanitizer.enabled(strict=False) as san:
        sim = Simulator()
        pool = CorePool(sim, 2)
        pool.busy = 3  # corruption: cores leaked by a buggy scheduler
        pool.acquire()  # queues (pool full); the conservation check runs
    assert any(v.check == "core-conservation" for v in san.violations)


def test_over_release_raises_hard_error_before_sanitizer():
    """Over-release is a hard SimulationError even without a sanitizer."""
    previous = sanitizer.disable()
    try:
        sim = Simulator()
        pool = CorePool(sim, 2, name="vcpus")
        with pytest.raises(SimulationError, match="vcpus.*without a matching"):
            pool.release()
    finally:
        if previous is not None:
            sanitizer._ACTIVE = previous


# -- fair-share links ------------------------------------------------------

def test_link_stream_count_corruption_detected():
    # Strict mode: the corrupted count would crash the wake-up machinery
    # further on, so the sanitizer must fail fast at the next hook.
    with sanitizer.enabled(strict=True) as san:
        sim = Simulator()
        link = FairShareLink(sim, 100.0, name="disk")
        link.transfer(50.0)
        link._n = 3  # corruption: active count no longer matches the heap
        with pytest.raises(InvariantViolation, match="link-conservation"):
            link.transfer(50.0)
    assert any(v.check == "link-conservation" for v in san.violations)


def test_link_share_overspeed_detected():
    san = Sanitizer(strict=False)
    sim = Simulator()
    link = FairShareLink(sim, 100.0, name="nic")
    link.transfer(50.0)
    link.log.record(sim.now, 250.0)  # log claims 2.5x the capacity
    san.check_link(link)
    assert any(v.check == "link-share" for v in san.violations)


# -- write-back cache ------------------------------------------------------

def test_cache_negative_dirty_detected():
    with sanitizer.enabled(strict=False) as san:
        sim = Simulator()
        link = FairShareLink(sim, 1e9)
        cache = WriteBackCache(sim, capacity_bytes=1e6, name="pc")
        cache.dirty = -50.0  # corruption
        cache.write(10.0, (link,))
        sim.run()
    assert any(v.check == "cache-dirty-negative" for v in san.violations)


def test_cache_overflush_detected():
    with sanitizer.enabled(strict=False) as san:
        sim = Simulator()
        link = FairShareLink(sim, 1e9)
        cache = WriteBackCache(sim, capacity_bytes=1e6, name="pc")
        cache.write(100.0, (link,))
        cache.bytes_written = 10.0  # corruption: pretend less was written
        sim.run()
    assert any(
        v.check in ("cache-overflush", "cache-flush-conservation")
        for v in san.violations
    )


def test_cache_clean_run_has_no_violations():
    with sanitizer.enabled(strict=True) as san:
        sim = Simulator()
        link = FairShareLink(sim, 1e6)
        cache = WriteBackCache(sim, capacity_bytes=1e9, flush_interval=1.0)
        done = cache.drained()
        cache.write(5e5, (link,))
        cache.write(5e5, (link,))
        sim.run()
        assert done.triggered
        assert cache.bytes_flushed == pytest.approx(1e6)
    assert san.violations == []


# -- billing ---------------------------------------------------------------

def test_billing_undercharge_detected():
    san = Sanitizer(strict=False)
    san.check_billing(BillingModel.PER_HOUR, seconds=7200.0, hours=1.0)
    assert any(v.check == "billing-undercharge" for v in san.violations)


def test_billing_negative_detected():
    san = Sanitizer(strict=False)
    san.check_billing(BillingModel.PER_SECOND, seconds=10.0, hours=-1.0)
    assert any(v.check == "billing-negative" for v in san.violations)


def test_billing_monotonicity_detected():
    san = Sanitizer(strict=False)
    san.check_billing(BillingModel.PER_HOUR, seconds=3000.0, hours=1.0)
    san.check_billing(BillingModel.PER_HOUR, seconds=4000.0, hours=0.5)
    checks = [v.check for v in san.violations]
    assert "billing-monotonicity" in checks
    # 0.5 h for 4000 s is also an undercharge — both fire.
    assert "billing-undercharge" in checks


def test_billed_hours_clean_under_strict_sanitizer():
    with sanitizer.enabled(strict=True) as san:
        for seconds in (0.0, 1.0, 59.0, 60.0, 3599.0, 3600.0, 3601.0, 7200.0):
            for model in BillingModel:
                billed_hours(seconds, model)
    assert san.violations == []


# -- integration: a real simulation stays invariant-clean ------------------

def test_full_simulation_clean_under_strict_sanitizer():
    from repro.cloud import ClusterSpec
    from repro.engines import PullEngine
    from repro.generators import montage_workflow
    from repro.workflow import Ensemble

    with sanitizer.enabled(strict=True) as san:
        spec = ClusterSpec("c3.8xlarge", 1, filesystem="local")
        result = PullEngine(spec).run(
            Ensemble.replicated(montage_workflow(degree=0.25), 2)
        )
        assert result.makespan > 0
    assert san.violations == []
