"""Tests for the TCP broker and multi-process DEWE v2 deployment."""

import subprocess
import sys

import pytest

from repro.dewe import DeweConfig, MasterDaemon, WorkerDaemon, submit_workflow
from repro.mq.messages import AckKind, JobAck, JobDispatch, WorkflowSubmission
from repro.mq.tcpbroker import (
    BrokerServer,
    RemoteBroker,
    decode_message,
    encode_message,
)
from repro.workflow import Job, Workflow

CFG = DeweConfig(
    default_timeout=5.0,
    master_poll_interval=0.005,
    worker_poll_interval=0.01,
    max_concurrent_jobs=4,
)


def small_workflow(name="tcpwf", argv=None) -> Workflow:
    wf = Workflow(name)
    for jid in ("a", "b", "c"):
        wf.new_job(jid, "t", runtime=0.0, action=argv)
    wf.add_dependency("a", "b")
    wf.add_dependency("a", "c")
    return wf


# ---------------------------------------------------------------------------
# Codecs
# ---------------------------------------------------------------------------


def test_codec_round_trip_submission():
    msg = WorkflowSubmission(workflow=small_workflow(), folder="/data/wf")
    restored = decode_message(encode_message(msg))
    assert isinstance(restored, WorkflowSubmission)
    assert restored.folder == "/data/wf"
    assert set(restored.workflow.jobs) == {"a", "b", "c"}
    assert restored.workflow.job("b").parents == ["a"]


def test_codec_round_trip_dispatch_with_argv():
    job = Job("j", "t", runtime=2.5, threads=2, timeout=60.0, action=["true", "-x"])
    msg = JobDispatch(workflow_name="wf", job_id="j", attempt=3, job=job)
    restored = decode_message(encode_message(msg))
    assert restored.attempt == 3
    assert restored.job.action == ["true", "-x"]
    assert restored.job.timeout == 60.0
    assert restored.job.threads == 2


def test_codec_round_trip_ack():
    msg = JobAck("wf", "j", AckKind.FAILED, worker="w1", attempt=2, error="boom")
    restored = decode_message(encode_message(msg))
    assert restored.kind is AckKind.FAILED
    assert restored.error == "boom"


def test_codec_rejects_callable_actions():
    job = Job("j", "t", action=lambda: None)
    with pytest.raises(TypeError, match="argv-list"):
        encode_message(JobDispatch(workflow_name="wf", job_id="j", job=job))


def test_codec_rejects_unknown():
    with pytest.raises(TypeError):
        encode_message({"not": "a dataclass"})
    with pytest.raises(ValueError):
        decode_message({"type": "mystery"})


# ---------------------------------------------------------------------------
# Server / client basics
# ---------------------------------------------------------------------------


def test_remote_publish_consume():
    with BrokerServer() as server:
        host, port = server.address
        with RemoteBroker(host, port) as client:
            client.publish("t", JobAck("wf", "j", AckKind.RUNNING))
            assert client.depth("t") == 1
            msg = client.consume("t")
            assert isinstance(msg, JobAck)
            assert client.consume("t", timeout=0.01) is None


def test_two_clients_share_topics():
    with BrokerServer() as server:
        host, port = server.address
        with RemoteBroker(host, port) as a, RemoteBroker(host, port) as b:
            a.publish("t", JobAck("wf", "j", AckKind.COMPLETED))
            msg = b.consume("t", timeout=1.0)
            assert msg.kind is AckKind.COMPLETED


def test_stats_over_the_wire():
    with BrokerServer() as server:
        host, port = server.address
        with RemoteBroker(host, port) as client:
            client.publish("t", JobAck("wf", "j", AckKind.RUNNING))
            stats = client.stats()
            assert stats["t"]["published"] == 1


# ---------------------------------------------------------------------------
# Full system over TCP
# ---------------------------------------------------------------------------


def test_master_and_worker_over_tcp():
    """Master and worker in the same process but communicating only via
    TCP — the daemons are unchanged."""
    with BrokerServer() as server:
        host, port = server.address
        master_conn = RemoteBroker(host, port)
        worker_conn = RemoteBroker(host, port)
        submit_conn = RemoteBroker(host, port)
        try:
            with MasterDaemon(master_conn, CFG) as master, WorkerDaemon(
                worker_conn, config=CFG
            ):
                submit_workflow(submit_conn, small_workflow())
                assert master.wait("tcpwf", timeout=20.0)
                assert master.states["tcpwf"].is_complete
        finally:
            master_conn.close()
            worker_conn.close()
            submit_conn.close()


def test_worker_in_separate_process():
    """The real deal: the worker daemon is another OS process started
    with nothing but the broker address (paper §III.D)."""
    with BrokerServer() as server:
        host, port = server.address
        proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.dewe.remote_worker",
                "--host", host,
                "--port", str(port),
                "--name", "proc-worker",
                "--slots", "4",
                "--executor", "subprocess",
                "--idle-exit", "30",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        master_conn = RemoteBroker(host, port)
        submit_conn = RemoteBroker(host, port)
        try:
            with MasterDaemon(master_conn, CFG) as master:
                submit_workflow(submit_conn, small_workflow(argv=["true"]))
                assert master.wait("tcpwf", timeout=30.0)
        finally:
            master_conn.close()
            submit_conn.close()
            proc.terminate()
            out, _ = proc.communicate(timeout=10)
    assert "proc-worker connected" in out
