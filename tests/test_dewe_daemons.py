"""Integration tests for the real threaded DEWE v2 system.

These run genuine multi-threaded master/worker daemons over the in-process
broker and execute real (tiny) workloads, including the paper's §V.A.3
fault-injection scenarios.
"""

import threading
import time

import pytest

from repro.dewe import (
    CallableExecutor,
    DeweConfig,
    MasterDaemon,
    NullExecutor,
    SubprocessExecutor,
    WorkerDaemon,
    submit_workflow,
)
from repro.generators import montage_workflow
from repro.mq import Broker
from repro.workflow import DataFile, Workflow

FAST = DeweConfig(
    default_timeout=1.0,
    master_poll_interval=0.002,
    worker_poll_interval=0.005,
    max_concurrent_jobs=8,
)


def make_diamond(record):
    wf = Workflow("diamond")
    lock = threading.Lock()

    def act(name):
        def run():
            with lock:
                record.append(name)
        return run

    for jid in ("a", "b", "c", "d"):
        wf.new_job(jid, "t", runtime=0.0, action=act(jid))
    wf.add_dependency("a", "b")
    wf.add_dependency("a", "c")
    wf.add_dependency("b", "d")
    wf.add_dependency("c", "d")
    return wf


def test_end_to_end_diamond_execution():
    broker = Broker()
    record = []
    with MasterDaemon(broker, FAST) as master, WorkerDaemon(broker, config=FAST):
        submit_workflow(broker, make_diamond(record))
        assert master.wait("diamond", timeout=10.0)
    assert record[0] == "a" and record[-1] == "d"
    assert sorted(record) == ["a", "b", "c", "d"]
    assert master.makespan("diamond") >= 0.0


def test_multiple_workflows_in_parallel():
    """The master manages multiple workflows concurrently over one queue
    (paper §III.B)."""
    broker = Broker()
    records = {f"wf{i}": [] for i in range(3)}
    workflows = []
    for i in range(3):
        wf = make_diamond(records[f"wf{i}"])
        wf = _rename(wf, f"wf{i}")
        workflows.append(wf)
    with MasterDaemon(broker, FAST) as master, WorkerDaemon(broker, config=FAST):
        for wf in workflows:
            submit_workflow(broker, wf)
        for i in range(3):
            assert master.wait(f"wf{i}", timeout=10.0)
    for i in range(3):
        assert len(records[f"wf{i}"]) == 4


def _rename(wf: Workflow, name: str) -> Workflow:
    clone = Workflow(name)
    for job in wf:
        clone.add_job(job)
    return clone


def test_multiple_workers_share_queue():
    broker = Broker()
    seen_workers = set()

    class TrackingExecutor(CallableExecutor):
        def run(self, job):
            seen_workers.add(threading.current_thread().name.split("-job")[0])
            time.sleep(0.01)

    wf = Workflow("wide")
    for i in range(16):
        wf.new_job(f"j{i}", "t")
    with MasterDaemon(broker, FAST) as master:
        workers = [
            WorkerDaemon(broker, TrackingExecutor(), FAST, name=f"w{k}").start()
            for k in range(4)
        ]
        submit_workflow(broker, wf)
        assert master.wait("wide", timeout=10.0)
        for w in workers:
            w.stop()
    assert len(seen_workers) >= 2  # work actually spread across daemons


def test_concurrency_cap_respected():
    broker = Broker()
    cfg = DeweConfig(
        default_timeout=5.0,
        master_poll_interval=0.002,
        worker_poll_interval=0.002,
        max_concurrent_jobs=2,
    )
    peak = [0]
    gate = threading.Semaphore(0)
    active = [0]
    lock = threading.Lock()

    def busy():
        with lock:
            active[0] += 1
            peak[0] = max(peak[0], active[0])
        time.sleep(0.05)
        with lock:
            active[0] -= 1

    wf = Workflow("cap")
    for i in range(8):
        wf.new_job(f"j{i}", "t", action=busy)
    with MasterDaemon(broker, cfg) as master, WorkerDaemon(broker, config=cfg):
        submit_workflow(broker, wf)
        assert master.wait("cap", timeout=10.0)
    assert peak[0] <= 2
    del gate


def test_failed_job_resubmitted_and_recovers():
    broker = Broker()
    attempts = []

    def flaky():
        attempts.append(1)
        if len(attempts) < 3:
            raise RuntimeError("transient failure")

    wf = Workflow("flaky")
    wf.new_job("only", "t", action=flaky)
    with MasterDaemon(broker, FAST) as master, WorkerDaemon(broker, config=FAST):
        submit_workflow(broker, wf)
        assert master.wait("flaky", timeout=10.0)
    assert len(attempts) == 3
    assert master.states["flaky"].resubmissions == 2


def test_killed_worker_jobs_recovered_by_timeout():
    """Paper §V.A.3: kill the worker daemon mid-run, restart 'on another
    node'; interrupted jobs are resubmitted after the timeout and the
    workflow completes."""
    broker = Broker()
    started = threading.Event()
    release = threading.Event()

    def slow_job():
        started.set()
        release.wait(timeout=5.0)

    wf = Workflow("victim")
    wf.new_job("slow", "t", action=slow_job)
    wf.new_job("after", "t")
    wf.add_dependency("slow", "after")

    cfg = DeweConfig(
        default_timeout=0.3,
        master_poll_interval=0.002,
        worker_poll_interval=0.005,
        max_concurrent_jobs=4,
    )
    with MasterDaemon(broker, cfg) as master:
        w1 = WorkerDaemon(broker, config=cfg, name="node1").start()
        submit_workflow(broker, wf)
        assert started.wait(timeout=5.0)
        w1.kill()          # the COMPLETED ack of 'slow' is now suppressed
        release.set()
        w1.join_jobs(timeout=5.0)  # job thread winds down, ack suppressed
        w2 = WorkerDaemon(broker, config=cfg, name="node2").start()
        assert master.wait("victim", timeout=10.0)
        w2.stop()
    assert master.states["victim"].resubmissions >= 1


def test_null_executor_runs_montage_structure():
    """A full (tiny) Montage DAG through the real system."""
    broker = Broker()
    wf = montage_workflow(degree=0.25)
    with MasterDaemon(broker, FAST) as master, WorkerDaemon(
        broker, NullExecutor(), FAST
    ):
        submit_workflow(broker, wf)
        assert master.wait(wf.name, timeout=30.0)
    state = master.states[wf.name]
    assert state.is_complete
    assert state.n_completed == len(wf)


def test_subprocess_executor_runs_argv():
    broker = Broker()
    wf = Workflow("proc")
    wf.new_job("true", "t", action=["true"])
    with MasterDaemon(broker, FAST) as master, WorkerDaemon(
        broker, SubprocessExecutor(), FAST
    ):
        submit_workflow(broker, wf)
        assert master.wait("proc", timeout=10.0)


def test_subprocess_executor_failure_is_failed_ack_then_retry_loops():
    broker = Broker()
    wf = Workflow("failing")
    calls = []

    class CountingExec(SubprocessExecutor):
        def run(self, job):
            calls.append(1)
            if len(calls) < 2:
                super().run(job)

    wf.new_job("false", "t", action=["false"])
    with MasterDaemon(broker, FAST) as master, WorkerDaemon(
        broker, CountingExec(), FAST
    ):
        submit_workflow(broker, wf)
        assert master.wait("failing", timeout=10.0)
    assert len(calls) == 2


def test_worker_stop_requeues_checked_out_message():
    from repro.mq.messages import TOPIC_DISPATCH, JobDispatch
    from repro.workflow.dag import Job

    cfg = DeweConfig(
        default_timeout=5.0,
        master_poll_interval=0.002,
        worker_poll_interval=0.5,  # long poll so we can race the stop
        max_concurrent_jobs=1,
    )
    in_consume = threading.Event()

    class SignallingBroker(Broker):
        def consume(self, topic_name, timeout=None):
            if topic_name == TOPIC_DISPATCH:
                in_consume.set()
            return super().consume(topic_name, timeout)

    broker = SignallingBroker()
    worker = WorkerDaemon(broker, config=cfg, name="w")
    worker.start()
    assert in_consume.wait(timeout=5.0)  # worker reached consume()
    worker._stop.set()
    broker.publish(
        TOPIC_DISPATCH,
        JobDispatch(workflow_name="wf", job_id="j", attempt=1, job=Job("j", "t")),
    )
    worker.stop()
    # The message the stopping worker checked out must be back in the queue
    # (or never consumed).
    assert broker.depth(TOPIC_DISPATCH) == 1


def test_master_rejects_duplicate_start():
    broker = Broker()
    master = MasterDaemon(broker, FAST).start()
    with pytest.raises(RuntimeError):
        master.start()
    master.stop()


def test_master_survives_bad_submissions():
    """A duplicate or invalid submission must not kill the master daemon
    (its service thread keeps running and later submissions succeed)."""
    broker = Broker()
    with MasterDaemon(broker, FAST) as master, WorkerDaemon(broker, config=FAST):
        good1 = Workflow("good-1")
        good1.new_job("only", "t")
        submit_workflow(broker, good1)
        assert master.wait("good-1", timeout=10.0)

        # Duplicate name: rejected, not fatal.
        dup = Workflow("good-1")
        dup.new_job("only", "t")
        submit_workflow(broker, dup)

        # Invalid DAG (cycle): rejected, not fatal.
        bad = Workflow("cyclic")
        bad.new_job("a", "t")
        bad.new_job("b", "t")
        bad.add_dependency("a", "b")
        bad.add_dependency("b", "a")
        submit_workflow(broker, bad)

        # The daemon still serves new workflows afterwards.
        good2 = Workflow("good-2")
        good2.new_job("only", "t")
        submit_workflow(broker, good2)
        assert master.wait("good-2", timeout=10.0)
        # The submission topic is FIFO: good-2 completing proves the two
        # earlier (rejected) submissions were already processed.
        assert "good-1" in master.rejected
        assert "cyclic" in master.rejected
