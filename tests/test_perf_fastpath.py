"""Fast-path regressions: kernel semantics, shared structure, parallel runner.

The throughput work (docs/PERFORMANCE.md) must not change what the
simulator computes — only how fast.  These tests pin the semantic edges
the optimisations touched: condition losers are detached, deferred calls
are closure-free and cancellable, workflow skeletons are shared
copy-on-write, and the sharded sweep runner reproduces the serial run
byte for byte.
"""

from repro.dewe.state import JobStatus, WorkflowState
from repro.parallel import RunSpec, execute_spec, run_many, run_serial
from repro.sim import AnyOf, Event, Simulator
from repro.workflow.dag import Job, Workflow


def _diamond() -> Workflow:
    wf = Workflow("diamond")
    wf.add_job(Job("a", "setup", runtime=1.0))
    wf.add_job(Job("b", "left", runtime=1.0))
    wf.add_job(Job("c", "right", runtime=1.0))
    wf.add_job(Job("d", "join", runtime=1.0))
    wf.add_dependency("a", "b")
    wf.add_dependency("a", "c")
    wf.add_dependency("b", "d")
    wf.add_dependency("c", "d")
    return wf


# -- kernel: AnyOf loser detach --------------------------------------------

def test_anyof_detaches_losers_on_first_fire():
    sim = Simulator()
    winner = sim.timeout(1.0, value="win")
    losers = [sim.timeout(10.0 + i) for i in range(50)]
    cond = AnyOf(sim, [winner] + losers)
    # While pending, every component carries the condition's check.
    assert all(len(t.callbacks) == 1 for t in losers)
    sim.run_until(cond)
    # The win must strip the check from every loser so long-lived events
    # (idle worker waits) do not accumulate dead callbacks.
    assert all(t.callbacks == [] for t in losers)
    assert cond.value == "win"


def test_anyof_already_triggered_component_detaches_rest():
    sim = Simulator()
    ready = Event(sim).succeed("now")
    sim.step()  # process the immediate event
    later = sim.timeout(100.0)
    cond = AnyOf(sim, [ready, later])
    assert cond.triggered
    assert later.callbacks == []


# -- kernel: closure-free deferred calls -----------------------------------

def test_schedule_call_stores_func_and_args_on_event():
    sim = Simulator()
    seen = []

    def note(tag):
        seen.append(tag)

    call = sim.schedule_call(5.0, note, "x")
    assert call.func is note  # stored directly, no closure wrapper
    assert call.args == ("x",)
    sim.run(until=10.0)
    assert seen == ["x"]


def test_schedule_call_cancel_withdraws_the_call():
    sim = Simulator()
    seen = []
    call = sim.schedule_call(5.0, seen.append, "x")
    assert call.cancel()
    sim.run(until=10.0)
    assert seen == []


def test_event_cancel_empties_callbacks_and_is_idempotent():
    sim = Simulator()
    timeout = sim.timeout(3.0)
    waits = []
    timeout.callbacks.append(waits.append)
    assert timeout.cancel()
    assert timeout.callbacks == []
    sim.run(until=10.0)
    assert waits == []
    assert not timeout.cancel()  # already processed: nothing to withdraw


# -- shared-structure ensembles --------------------------------------------

def test_relabelled_members_share_one_skeleton():
    wf = _diamond()
    clones = [wf.relabel(f"m{i}") for i in range(5)]
    skeletons = {id(c.skeleton()) for c in clones}
    assert skeletons == {id(wf.skeleton())}


def test_skeleton_invalidated_by_mutation():
    wf = _diamond()
    before = wf.skeleton()
    wf.add_job(Job("e", "extra", runtime=1.0))
    wf.add_dependency("d", "e")
    after = wf.skeleton()
    assert after is not before
    assert "e" in after.initial_pending
    assert "e" not in before.initial_pending


def test_state_is_copy_on_write_not_aliased():
    wf = _diamond()
    sk = wf.skeleton()
    s1 = WorkflowState(wf, default_timeout=60.0, validate=False)
    s2 = WorkflowState(wf.relabel("other"), default_timeout=60.0, validate=False)
    assert s1.pending is not sk.initial_pending
    assert s1.pending is not s2.pending
    s1.pending["d"] = 99
    assert s2.pending["d"] == sk.initial_pending["d"] == 2
    s1.status["a"] = JobStatus.RUNNING
    assert s2.status["a"] is JobStatus.WAITING


def test_sanitizer_flags_aliased_member_state():
    from repro.analysis.sanitizer import Sanitizer

    wf = _diamond()
    sk = wf.skeleton()
    state = WorkflowState(wf, default_timeout=60.0, validate=False)
    san = Sanitizer(strict=False)
    san.check_cow_isolation(state, sk)
    assert not san.violations  # properly copied state is clean
    state.pending = sk.initial_pending  # alias the shared skeleton
    san.check_cow_isolation(state, sk)
    assert any(v.check == "cow-isolation" for v in san.violations)


# -- parallel runner --------------------------------------------------------

SWEEP = [
    RunSpec(engine="dewe-v2", workflow="montage", size=0.25, workflows=2,
            nodes=1, filesystem="local", label=f"s{i}")
    for i in range(3)
]


def test_execute_spec_is_deterministic():
    a = execute_spec(SWEEP[0])
    b = execute_spec(SWEEP[0])
    assert a.fingerprint == b.fingerprint
    assert a == b


def test_sharded_sweep_matches_serial_byte_for_byte():
    serial = run_serial(SWEEP)
    sharded = run_many(SWEEP, workers=2)
    assert [d.fingerprint for d in serial] == [d.fingerprint for d in sharded]
    assert serial == sharded  # full digests, canonical order


def test_run_many_single_worker_is_serial_path():
    assert run_many(SWEEP[:2], workers=1) == run_serial(SWEEP[:2])


# -- end-to-end determinism (journal + fault traces) ------------------------

def test_chaos_fault_trace_and_journal_identical_across_runs():
    import repro.analysis.sanitizer as sanitizer
    from repro.faults.chaos import SCENARIOS, run_chaos

    with sanitizer.enabled(strict=True):
        a = run_chaos(SCENARIOS["master-crash"])
        b = run_chaos(SCENARIOS["master-crash"])
    assert a.trace_text == b.trace_text
    assert a.makespan == b.makespan
    assert a.journal is not None
    assert a.journal.text() == b.journal.text()
