"""Data-integrity layer: checksums, corruption/loss injection, and
data-aware recovery (minimal ancestor re-execution, input restaging)."""

import pytest

import repro.analysis.sanitizer as sanitizer
from repro.cloud import ClusterSpec
from repro.engines.base import RunConfig
from repro.engines.pull import PullEngine
from repro.faults.models import FaultTrace, FileCorruptionModel, FileLossModel
from repro.faults.retry import RetryPolicy
from repro.generators import montage_workflow
from repro.storage.integrity import FileIntegrity, file_digest
from repro.workflow import DataFile, Ensemble

SPEC = ClusterSpec("m3.2xlarge", 2)
CONFIG = RunConfig(default_timeout=10.0, timeout_check_interval=0.5,
                   record_jobs=False)


def _run(models, retry_attempts=4):
    engine = PullEngine(
        SPEC,
        config=CONFIG,
        retry=RetryPolicy(max_attempts=retry_attempts),
        integrity_models=models,
    )
    return engine.run(Ensemble.replicated(montage_workflow(degree=0.3), 1))


# -- checksums and the tracker ---------------------------------------------


def test_file_digest_is_pure_and_distinct():
    a = file_digest("wf", "x.fits", 1.0)
    assert a == file_digest("wf", "x.fits", 1.0)
    assert a != file_digest("wf", "x.fits", 2.0)
    assert a != file_digest("other", "x.fits", 1.0)
    assert len(a) == 16


def test_tracker_detects_corrupt_write():
    trace = FaultTrace()
    tracker = FileIntegrity(
        trace=trace,
        models=(FileCorruptionModel(targets=("wf/bad.fits",)),),
    )
    good = DataFile("good.fits", 1.0)
    bad = DataFile("bad.fits", 1.0)
    tracker.record_write("wf", good, 1.0)
    tracker.record_write("wf", bad, 1.0)
    assert tracker.is_clean("wf", good.name)
    assert not tracker.is_clean("wf", bad.name)
    assert tracker.verify("wf", [good, bad], 2.0) == ["bad.fits"]
    assert tracker.stats["corrupted"] == 1
    assert tracker.stats["detected"] == 1
    kinds = [e.kind for e in trace]
    assert "file-corruption" in kinds and "corruption-detected" in kinds


def test_tracker_loss_and_restage():
    tracker = FileIntegrity(models=(FileLossModel(targets=("raw.fits",)),))
    raw = DataFile("raw.fits", 1.0, kind="input")
    tracker.record_stage("wf", raw)
    assert tracker.verify("wf", [raw], 1.0) == ["raw.fits"]
    tracker.restage("wf", raw, 2.0)
    assert tracker.is_clean("wf", raw.name)
    assert tracker.verify("wf", [raw], 3.0) == []
    assert tracker.stats["lost"] == 1 and tracker.stats["restaged"] == 1


def test_second_write_always_lands_clean():
    """Fault models strike only a file's first write, so regeneration is
    guaranteed to converge (no corrupt-regenerate livelock)."""
    tracker = FileIntegrity(models=(FileCorruptionModel(targets=("f",)),))
    f = DataFile("f", 1.0)
    tracker.record_write("wf", f, 1.0)
    assert not tracker.is_clean("wf", f.name)
    tracker.record_write("wf", f, 2.0)
    assert tracker.is_clean("wf", f.name)
    assert tracker.stats["regenerated"] == 1


def test_targets_match_bare_and_qualified_names():
    model = FileCorruptionModel(targets=("wf/one.fits", "two.fits"))
    assert model.strikes("wf", "one.fits", 1)
    assert model.strikes("anywf", "two.fits", 1)
    assert not model.strikes("other", "one.fits", 1)
    assert not model.strikes("wf", "one.fits", 2)  # only the first write


def test_probabilistic_strikes_are_deterministic():
    model = FileCorruptionModel(p=0.3, seed=11)
    draws = [model.strikes("wf", f"f{i}", 1) for i in range(50)]
    assert draws == [model.strikes("wf", f"f{i}", 1) for i in range(50)]
    assert any(draws) and not all(draws)


# -- engine-level recovery -------------------------------------------------


def test_corruption_triggers_minimal_ancestor_rerun():
    """Corrupt one mProjectPP output: exactly that producer re-runs (one
    extra execution), consumers wait and then complete; nothing dies."""
    n_jobs = 20  # montage 0.3deg
    result = _run(
        (FileCorruptionModel(targets=("*/p_000000.fits",)),)
    )
    assert result.jobs_executed == n_jobs + 1
    assert not result.dead_letters
    counts = next(iter(result.job_counts.values()))
    assert counts.get("completed") == n_jobs
    assert result.integrity_stats["corrupted"] == 1
    assert result.integrity_stats["regenerated"] == 1
    assert result.integrity_stats["detected"] >= 1
    assert result.data_recoveries >= 1


def test_lost_input_is_restaged_without_rerun():
    """Lose a raw input: the consumer detects it before executing, the
    master restages from the archive, and no job runs twice."""
    n_jobs = 20
    result = _run((FileLossModel(targets=("*/raw_000003.fits",)),))
    assert result.jobs_executed == n_jobs
    assert not result.dead_letters
    assert result.integrity_stats["lost"] == 1
    assert result.integrity_stats["restaged"] == 1


def test_random_corruption_and_loss_still_complete():
    result = _run(
        (
            FileCorruptionModel(p=0.05, seed=3),
            FileLossModel(p=0.05, seed=4),
        )
    )
    assert not result.dead_letters
    counts = next(iter(result.job_counts.values()))
    assert counts.get("completed") == 20
    injected = (
        result.integrity_stats["corrupted"] + result.integrity_stats["lost"]
    )
    assert injected > 0
    assert result.integrity_stats["detected"] >= injected


def test_corruption_recovery_is_deterministic():
    fp = lambda r: (  # noqa: E731
        r.makespan,
        r.jobs_executed,
        dict(r.integrity_stats),
        [e.line() for e in r.fault_events],
    )
    a = _run((FileCorruptionModel(p=0.08, seed=5),))
    b = _run((FileCorruptionModel(p=0.08, seed=5),))
    assert fp(a) == fp(b)


def test_exhausted_regeneration_budget_dead_letters():
    """If the producer is out of attempts when its output must be
    regenerated, the producer is dead-lettered with reason
    ``data-loss`` and its waiters cascade as ``upstream-dead``."""
    from repro.workflow import Workflow

    wf = Workflow("tiny")
    out = DataFile("mid.fits", 10.0)
    # The producer's budget is exactly one attempt: the regeneration
    # request cannot re-run it.
    wf.new_job("producer", "gen", runtime=0.1, outputs=[out],
               max_attempts=1)
    wf.new_job("consumer", "use", runtime=0.1, inputs=[out])
    wf.add_dependency("producer", "consumer")
    engine = PullEngine(
        ClusterSpec("m3.2xlarge", 1),
        config=CONFIG,
        retry=RetryPolicy(max_attempts=4),
        integrity_models=(FileCorruptionModel(targets=("mid.fits",)),),
    )
    with sanitizer.enabled(strict=False):
        result = engine.run(Ensemble([wf]))
    reasons = {e.job_id: e.reason for e in result.dead_letters}
    assert reasons == {"producer": "data-loss", "consumer": "upstream-dead"}


def test_regeneration_sanitizer_hook_fires_on_mismatch():
    with sanitizer.enabled(strict=False) as san:
        san.check_regeneration("wf", "f.fits", "aaaa", "bbbb", time=1.0)
        assert any(v.check == "regeneration-integrity" for v in san.violations)
        san2_before = len(san.violations)
        san.check_regeneration("wf", "f.fits", "aaaa", "aaaa", time=2.0)
        assert len(san.violations) == san2_before  # match: no violation
