"""Tests for the pulling (DEWE v2) simulation engine."""

import pytest

from repro.cloud import ClusterSpec
from repro.engines import PullEngine, RunConfig
from repro.faults import FaultAction, FaultSchedule
from repro.generators import montage_workflow, random_layered_workflow
from repro.workflow import Ensemble, Workflow


def run_small(n_workflows=1, nodes=1, fs="local", degree=0.5, **engine_kwargs):
    template = montage_workflow(degree=degree)
    ensemble = Ensemble.replicated(template, n_workflows)
    spec = ClusterSpec("c3.8xlarge", nodes, filesystem=fs)
    return PullEngine(spec, **engine_kwargs).run(ensemble)


def test_single_workflow_completes():
    result = run_small()
    assert result.jobs_executed == len(montage_workflow(degree=0.5))
    assert result.makespan > 0
    assert result.resubmissions == 0


def test_all_jobs_recorded_once():
    result = run_small()
    ids = [(r.workflow, r.job_id) for r in result.records]
    assert len(ids) == len(set(ids))


def test_records_respect_precedence():
    template = montage_workflow(degree=0.5)
    result = PullEngine(ClusterSpec("c3.8xlarge", 1, filesystem="local")).run(
        Ensemble([template])
    )
    ends = {r.job_id: r.end for r in result.records}
    starts = {r.job_id: r.start for r in result.records}
    for job in template:
        for parent in job.parents:
            assert ends[parent] <= starts[job.id] + 1e-6, (parent, job.id)


def test_multiple_workflows_interleave():
    result = run_small(n_workflows=3)
    spans = result.workflow_spans
    assert len(spans) == 3
    # Batch submission: all start at ~0 and overlap.
    starts = [s for s, _ in spans.values()]
    assert all(s == 0.0 for s in starts)


def test_incremental_submission_delays_starts():
    template = montage_workflow(degree=0.5)
    ensemble = Ensemble.replicated(template, 3, interval=50.0)
    result = PullEngine(ClusterSpec("c3.8xlarge", 1, filesystem="local")).run(ensemble)
    starts = sorted(s for s, _ in result.workflow_spans.values())
    assert starts == [0.0, 50.0, 100.0]


def test_makespan_scales_with_workload():
    # At tiny degrees the blocking stage dominates and hides the fan work,
    # so use degree 1.0 where stage 1 saturates the node.
    one = run_small(n_workflows=1, degree=1.0)
    eight = run_small(n_workflows=8, degree=1.0)
    assert eight.makespan > one.makespan * 1.5
    assert eight.makespan < one.makespan * 8.0  # parallelism helps


def test_multi_node_faster_than_single():
    slow = run_small(n_workflows=4, nodes=1, fs="local", degree=1.0)
    fast = run_small(n_workflows=4, nodes=4, fs="moosefs", degree=1.0)
    assert fast.makespan < slow.makespan


def test_concurrency_never_exceeds_vcpus():
    result = run_small(n_workflows=2)
    for log in result.thread_logs:
        assert max(log.values) <= 32


def test_record_jobs_off_keeps_result_light():
    result = run_small(config=RunConfig(record_jobs=False))
    assert result.records == []
    assert result.jobs_executed > 0


def test_total_cpu_seconds_close_to_workload():
    template = montage_workflow(degree=0.5)
    result = PullEngine(ClusterSpec("c3.8xlarge", 1, filesystem="local")).run(
        Ensemble([template])
    )
    assert result.total_cpu_seconds() == pytest.approx(
        template.total_runtime(), rel=0.01
    )


def test_disk_writes_match_workflow_bytes():
    template = montage_workflow(degree=0.5)
    result = PullEngine(ClusterSpec("c3.8xlarge", 1, filesystem="local")).run(
        Ensemble([template])
    )
    by_kind = template.bytes_by_kind()
    expected = by_kind["intermediate"] + by_kind["output"]
    assert result.total_disk_write_bytes() == pytest.approx(expected, rel=1e-6)


def test_runs_non_montage_workflows():
    from repro.generators import cybershake_workflow, ligo_workflow

    for wf in (ligo_workflow(blocks=8, group=4), cybershake_workflow(4, 3)):
        result = PullEngine(ClusterSpec("c3.8xlarge", 1, filesystem="local")).run(
            Ensemble([wf])
        )
        assert result.jobs_executed == len(wf)


def test_random_dag_property_all_jobs_executed():
    for seed in range(3):
        wf = random_layered_workflow(n_jobs=60, n_levels=6, seed=seed)
        result = PullEngine(ClusterSpec("c3.8xlarge", 1, filesystem="local")).run(
            Ensemble([wf])
        )
        assert result.jobs_executed == 60


def test_deterministic_repeat_runs():
    a = run_small(n_workflows=2)
    b = run_small(n_workflows=2)
    assert a.makespan == b.makespan
    assert a.total_cpu_seconds() == b.total_cpu_seconds()


# ---------------------------------------------------------------------------
# Fault injection (paper §V.A.3)
# ---------------------------------------------------------------------------


def test_worker_kill_and_restart_recovers():
    template = montage_workflow(degree=0.5)
    baseline = PullEngine(ClusterSpec("c3.8xlarge", 1, filesystem="local")).run(
        Ensemble([template])
    )
    # Kill the only worker daemon mid-stage-1, restart 5 s later.
    t_kill = baseline.makespan * 0.2
    schedule = FaultSchedule(
        [FaultAction(t_kill, 0, "kill"), FaultAction(t_kill + 5.0, 0, "restart")]
    )
    cfg = RunConfig(default_timeout=30.0, timeout_check_interval=1.0)
    result = PullEngine(
        ClusterSpec("c3.8xlarge", 1, filesystem="local"),
        config=cfg,
        fault_schedule=schedule,
    ).run(Ensemble([template]))
    assert result.jobs_executed >= len(template)
    assert result.makespan > baseline.makespan  # interruptions cost time
    assert result.resubmissions > 0


def test_two_node_failover():
    """One worker daemon at a time on a two-node cluster: kill on node 0,
    restart on node 1 (paper's second robustness test)."""
    template = montage_workflow(degree=1.0)
    base = PullEngine(ClusterSpec("c3.8xlarge", 2, filesystem="nfs-nton")).run(
        Ensemble([template])
    )
    t_kill = base.makespan * 0.5
    schedule = FaultSchedule(
        [FaultAction(t_kill, 0, "kill"), FaultAction(t_kill + 5.0, 1, "restart")],
        initially_down=(1,),
    )
    cfg = RunConfig(default_timeout=30.0, timeout_check_interval=1.0)
    result = PullEngine(
        ClusterSpec("c3.8xlarge", 2, filesystem="nfs-nton"),
        config=cfg,
        fault_schedule=schedule,
    ).run(Ensemble([template]))
    nodes_used = {r.node for r in result.records}
    assert nodes_used == {0, 1}  # work really moved to the other node
    assert result.jobs_executed >= len(template)


def test_fault_during_blocking_job_costs_timeout():
    """Interrupting a blocking job adds ~the timeout; interrupting fan
    jobs adds ~the downtime (paper §V.A.3)."""
    template = montage_workflow(degree=0.5)
    spec = ClusterSpec("c3.8xlarge", 1, filesystem="local")
    baseline = PullEngine(spec).run(Ensemble([template]))

    from repro.monitor.timeline import stage_windows

    windows = stage_windows(baseline)
    (s2_start, s2_end) = next(iter(windows.values()))
    timeout = 40.0
    cfg = RunConfig(default_timeout=timeout, timeout_check_interval=0.5)

    # Kill mid-blocking-job.
    t_kill = (s2_start + s2_end) / 2
    schedule = FaultSchedule(
        [FaultAction(t_kill, 0, "kill"), FaultAction(t_kill + 2.0, 0, "restart")]
    )
    hit_blocking = PullEngine(spec, config=cfg, fault_schedule=schedule).run(
        Ensemble([template])
    )
    delta = hit_blocking.makespan - baseline.makespan
    # Must wait out the interrupted blocking job's timeout (plus rerun of
    # the partially executed blocking work).
    assert delta >= timeout * 0.5
    assert hit_blocking.resubmissions >= 1
