"""Shared test configuration.

The whole tier-1 suite runs with the simulation invariant sanitizer
enabled in *strict* mode (docs/STATIC_ANALYSIS.md): every simulator
step, core acquire/release, fair-share wake-up, cache flush and billing
computation is cross-checked against its conservation laws.  A clean
suite therefore certifies not just the observable results but the
internal bookkeeping of every simulation the tests run.

With ``REPRO_RACEDETECT`` set (the CI ``concurrency`` job), every test
additionally runs under a fresh concurrency event recorder and the
happens-before race detector replays its log at teardown — a test that
provokes an unsynchronized access to registered daemon state fails with
the race's fingerprint, even if its assertions passed.
"""

import os

import pytest

import repro.analysis.sanitizer as sanitizer


@pytest.fixture(autouse=True)
def _strict_sanitizer():
    san = sanitizer.enable(strict=True)
    try:
        yield san
    finally:
        # A test may install its own sanitizer (or disable ours); only
        # tear down if ours is still the active one.
        if sanitizer.active() is san:
            sanitizer.disable()
    assert not san.violations, (
        "simulation invariant violations: "
        + "; ".join(str(v) for v in san.violations)
    )


if os.environ.get("REPRO_RACEDETECT", "").strip().lower() not in (
    "", "0", "off", "false", "no"
):
    import repro.analysis.concurrency.recorder as _race_recorder
    from repro.analysis.concurrency.detector import detect_races as _detect

    @pytest.fixture(autouse=True)
    def _race_detector():
        rec = _race_recorder.enable()
        try:
            yield rec
        finally:
            # A test may install its own recorder (the mutation suite
            # does); only tear down if ours is still the active one.
            if _race_recorder.active() is rec:
                _race_recorder.disable()
        races = _detect(rec.events, rec.thread_names)
        assert not races, "data races detected: " + "; ".join(
            str(r) for r in races
        )
