"""Shared test configuration.

The whole tier-1 suite runs with the simulation invariant sanitizer
enabled in *strict* mode (docs/STATIC_ANALYSIS.md): every simulator
step, core acquire/release, fair-share wake-up, cache flush and billing
computation is cross-checked against its conservation laws.  A clean
suite therefore certifies not just the observable results but the
internal bookkeeping of every simulation the tests run.
"""

import pytest

import repro.analysis.sanitizer as sanitizer


@pytest.fixture(autouse=True)
def _strict_sanitizer():
    san = sanitizer.enable(strict=True)
    try:
        yield san
    finally:
        # A test may install its own sanitizer (or disable ours); only
        # tear down if ours is still the active one.
        if sanitizer.active() is san:
            sanitizer.disable()
    assert not san.violations, (
        "simulation invariant violations: "
        + "; ".join(str(v) for v in san.violations)
    )
