"""Partition-tolerant control plane: heartbeat leases, partitions,
standby-master failover, admission control, and the game-day harness.

The DES tests double as determinism checks: every scenario is run twice
and the fault traces must match byte for byte.
"""

import pytest

import repro.analysis.sanitizer as sanitizer
from repro.cloud import ClusterSpec
from repro.engines import PullEngine, RunConfig
from repro.faults import RetryPolicy
from repro.faults.chaos import get_scenario, run_chaos
from repro.faults.models import (
    FaultTrace,
    NetworkPartitionModel,
    PartitionWindow,
    SpotTerminationModel,
)
from repro.generators import montage_workflow
from repro.liveness import (
    AdmissionControl,
    LeaseConfig,
    LeaseTable,
    MasterFailoverModel,
    new_liveness_stats,
)
from repro.monitor import robustness_metrics, to_chrome_trace
from repro.mq.simbroker import SimBroker
from repro.recovery.journal import Journal
from repro.sim import Simulator
from repro.workflow import Ensemble


def small_spec(n_nodes: int = 2) -> ClusterSpec:
    fs = "local" if n_nodes == 1 else "moosefs"
    return ClusterSpec("c3.8xlarge", n_nodes, filesystem=fs)


def fast_cfg(timeout: float = 6.0, record: bool = False) -> RunConfig:
    return RunConfig(
        default_timeout=timeout, timeout_check_interval=0.25, record_jobs=record
    )


def trace_lines(result) -> str:
    return "\n".join(e.line() for e in result.fault_events)


# -- lease table -------------------------------------------------------------
def test_lease_config_validation():
    with pytest.raises(ValueError):
        LeaseConfig(heartbeat_interval=0.0)
    with pytest.raises(ValueError):
        LeaseConfig(miss_threshold=0)
    assert LeaseConfig(heartbeat_interval=0.5, miss_threshold=4).lease_timeout == 2.0


def test_lease_grant_beat_fence_cycle():
    table = LeaseTable(LeaseConfig(heartbeat_interval=1.0, miss_threshold=2))
    epoch = table.grant("w0", 0.0)
    assert epoch == 1 and table.valid("w0", epoch)
    assert table.beat("w0", epoch, 1.0)
    # Silent past the miss threshold: expire names it, fence stales it.
    assert table.expire(1.5) == []
    assert table.expire(3.5) == ["w0"]
    assert table.stats["heartbeat_misses"] == 2
    assert table.fence("w0", 3.5) == epoch
    assert table.is_fenced("w0")
    assert not table.valid("w0", epoch)
    assert not table.beat("w0", epoch, 4.0)
    # Fencing is idempotent and a regrant re-admits under a newer epoch.
    table.fence("w0", 5.0)
    assert table.stats["lease_fencings"] == 1
    fresh = table.grant("w0", 6.0)
    assert fresh > epoch and table.valid("w0", fresh)
    assert table.stats["lease_regrants"] == 1


def test_lease_observe_renews_and_readmits():
    table = LeaseTable(LeaseConfig(heartbeat_interval=1.0))
    assert table.observe("w0", 0.0) == 1  # unknown worker: admitted
    assert table.observe("w0", 1.0) is None  # renewed in place
    table.fence("w0", 5.0)
    assert table.observe("w0", 6.0) == 2  # fenced worker: fresh epoch


def test_lease_epoch_floor_orders_master_incarnations():
    primary = LeaseTable(LeaseConfig())
    for worker in ("a", "b", "c"):
        primary.grant(worker, 0.0)
    standby = LeaseTable(LeaseConfig(), epoch_floor=primary.max_epoch)
    # Every epoch the standby issues post-dates every primary-era epoch,
    # so a single comparison fences the whole previous incarnation.
    assert standby.grant("a", 1.0) > primary.max_epoch
    assert not standby.valid("b", primary.current_epoch("b"))


def test_admission_control_gate():
    with pytest.raises(ValueError):
        AdmissionControl(max_pending_jobs=0)
    with pytest.raises(ValueError):
        AdmissionControl(retry_after=0.0)
    gate = AdmissionControl(max_pending_jobs=4, retry_after=0.5)
    assert gate.admits(3)
    assert not gate.admits(4)


def test_failover_model_validation():
    with pytest.raises(ValueError):
        MasterFailoverModel(-1.0)
    with pytest.raises(ValueError):
        MasterFailoverModel(1.0, detection=0.0)


# -- partition model ---------------------------------------------------------
def test_partition_window_validation():
    with pytest.raises(ValueError):
        PartitionWindow(node=0, start=-1.0, duration=1.0)
    with pytest.raises(ValueError):
        PartitionWindow(node=0, start=0.0, duration=0.0)
    with pytest.raises(ValueError):
        PartitionWindow(node=0, start=0.0, duration=1.0, mode="sideways")


def test_partition_model_rejects_overlapping_windows():
    with pytest.raises(ValueError, match="overlap"):
        NetworkPartitionModel(
            [
                PartitionWindow(node=0, start=0.0, duration=5.0),
                PartitionWindow(node=0, start=3.0, duration=2.0),
            ]
        )


def test_partition_model_sampling_is_seed_deterministic():
    a = NetworkPartitionModel.sample(3, 8, 600.0, 0.8, p_asymmetric=0.5)
    b = NetworkPartitionModel.sample(3, 8, 600.0, 0.8, p_asymmetric=0.5)
    c = NetworkPartitionModel.sample(4, 8, 600.0, 0.8, p_asymmetric=0.5)
    assert a.windows == b.windows
    assert a.windows != c.windows
    assert all(w.mode in ("full", "to-master", "from-master") for w in a.windows)
    shielded = NetworkPartitionModel.sample(3, 8, 600.0, 1.0, protected=(0, 1))
    assert {w.node for w in shielded.windows} <= set(range(2, 8))


# -- price-indexed spot hazard -----------------------------------------------
def test_spot_price_hazard_default_preserves_traces():
    flat = SpotTerminationModel.sample(5, 6, 3600.0, rate_per_hour=40.0)
    default = SpotTerminationModel.sample(
        5, 6, 3600.0, rate_per_hour=40.0, price_hazard=None
    )
    unit = SpotTerminationModel.sample(
        5, 6, 3600.0, rate_per_hour=40.0, price_hazard=((0.0, 1.0),)
    )
    # A flat 1x hazard is the identity mapping: byte-for-byte the same
    # reclamations as the pre-hazard sampler.
    assert default.terminations == flat.terminations
    assert unit.terminations == flat.terminations


def test_spot_price_hazard_pulls_reclamations_into_the_spike():
    flat = SpotTerminationModel.sample(5, 6, 3600.0, rate_per_hour=40.0)
    spiky = SpotTerminationModel.sample(
        5, 6, 3600.0, rate_per_hour=40.0, price_hazard=((0.0, 1.0), (10.0, 50.0))
    )
    assert spiky.terminations != flat.terminations
    # More hazard can only move each node's reclamation earlier.
    flat_by_node = dict((n, t) for t, n in flat.terminations)
    for t, node in spiky.terminations:
        assert t <= flat_by_node.get(node, 3600.0) + 1e-9


# -- journal fencing ---------------------------------------------------------
def test_journal_fence_refuses_stale_epoch_appends():
    journal = Journal()
    assert journal.append(0.0, "submit", "wf", epoch=0) is not None
    token = journal.fence()
    assert token == 1
    # The fenced primary's write goes nowhere; the standby's lands.
    assert journal.append(1.0, "dispatch", "wf", "job", epoch=0) is None
    assert journal.fenced_appends == 1
    assert journal.append(1.0, "dispatch", "wf", "job", epoch=token) is not None
    assert len(journal) == 2


# -- bounded broker topics ---------------------------------------------------
def test_simbroker_bounded_topic_sheds_deterministically():
    sim = Simulator()
    broker = SimBroker(sim, limits={"work": 2})
    assert broker.publish("work", "a")
    assert broker.publish("work", "b")
    assert not broker.publish("work", "c")  # at capacity: shed
    assert broker.shed == {"work": 1}
    assert broker.publish("other", "unbounded")


# -- sanitizer hooks ---------------------------------------------------------
def test_sanitizer_flags_settlement_from_fenced_lease():
    san = sanitizer.Sanitizer(strict=False)
    san.check_lease_fencing("wf", "job", "w0", stale=False, time=1.0)
    assert not san.violations
    san.check_lease_fencing("wf", "job", "w0", stale=True, time=2.0)
    assert [v.check for v in san.violations] == ["lease-fencing"]
    assert "fenced lease" in str(san.violations[0])


def test_sanitizer_flags_overlapping_rental_spans():
    san = sanitizer.Sanitizer(strict=False)
    san.check_failover_billing("node-0", [(0.0, 5.0), (5.0, 9.0)], makespan=10.0)
    assert not san.violations
    # A failover that double-billed the same wall-clock interval.
    san.check_failover_billing("node-0", [(0.0, 5.0), (4.0, 9.0)], makespan=10.0)
    assert [v.check for v in san.violations] == ["failover-billing"]


# -- DES: partitions under leases --------------------------------------------
def _partition_engine(windows, liveness=True, timeout=6.0):
    # Two 8-vCPU nodes against a 25-wide mProjectPP wave: the dispatch
    # queue wakes the oldest idle slot, so with fewer ready jobs than
    # node 0 has slots the second node would never hold any work and a
    # partition there would be vacuous.
    return PullEngine(
        ClusterSpec("m3.2xlarge", 2, filesystem="moosefs"),
        config=fast_cfg(timeout),
        retry=RetryPolicy(max_attempts=6),
        chaos_models=[NetworkPartitionModel(windows)],
        fault_trace=FaultTrace(),
        liveness=(
            LeaseConfig(heartbeat_interval=0.25, miss_threshold=3)
            if liveness
            else None
        ),
    )


def _montage_ensemble(n: int = 1) -> Ensemble:
    return Ensemble.replicated(montage_workflow(degree=0.3), n)


def _wide_ensemble() -> Ensemble:
    return Ensemble([montage_workflow(degree=0.8)])


def test_des_full_partition_fences_and_redispatches():
    windows = [PartitionWindow(node=1, start=1.0, duration=4.0)]
    results = [
        _partition_engine(windows).run(_wide_ensemble()) for _ in range(2)
    ]
    result = results[0]
    counts = next(iter(result.job_counts.values()))
    assert counts["completed"] == 143 and counts["dead"] == 0
    stats = result.liveness_stats
    # The silent worker was fenced well before the 6 s job timeout and
    # its in-flight jobs redispatched to the surviving node.
    assert stats["partitions"] == 1
    assert stats["lease_fencings"] >= 1
    assert stats["heartbeat_misses"] >= 3
    assert result.resubmissions > 0
    kinds = {e.kind for e in result.fault_events}
    assert {"partition-start", "partition-heal", "lease-fence"} <= kinds
    # Byte-identical replay: same seed-free schedule, same trace.
    assert trace_lines(results[0]) == trace_lines(results[1])
    assert results[0].makespan == results[1].makespan


def test_des_asymmetric_partition_black_holed_dispatches_recover():
    # ``to-master``: the worker keeps pulling but its acks are buffered,
    # then rejected as stale once the lease is fenced.  Those deliveries
    # never reach the fencing requeue (no validly-acked assignment), so
    # recovery leans on the always-armed dispatch deadline.
    windows = [PartitionWindow(node=1, start=1.0, duration=4.0, mode="to-master")]
    result = _partition_engine(windows).run(_wide_ensemble())
    counts = next(iter(result.job_counts.values()))
    assert counts["completed"] == 143 and counts["dead"] == 0
    assert result.liveness_stats["stale_epoch_acks"] > 0
    assert result.liveness_stats["lease_fencings"] >= 1


def test_des_partition_without_leases_recovers_via_job_timeout():
    windows = [PartitionWindow(node=1, start=1.0, duration=4.0)]
    result = _partition_engine(windows, liveness=False).run(_wide_ensemble())
    counts = next(iter(result.job_counts.values()))
    assert counts["completed"] == 143 and counts["dead"] == 0
    # No lease plane: the only liveness evidence is the partition tally.
    assert result.liveness_stats["lease_fencings"] == 0
    assert result.liveness_stats["partitions"] == 1


# -- DES: standby-master failover --------------------------------------------
def _failover_engine(liveness: bool):
    return PullEngine(
        small_spec(2),
        config=fast_cfg(),
        retry=RetryPolicy(max_attempts=6),
        fault_trace=FaultTrace(),
        journal=Journal(checkpoint_every=10),
        failover=MasterFailoverModel(at=1.5, detection=0.5),
        liveness=(
            LeaseConfig(heartbeat_interval=0.25, miss_threshold=3)
            if liveness
            else None
        ),
    )


@pytest.mark.parametrize("liveness", [False, True])
def test_des_failover_settles_every_job_exactly_once(liveness):
    results = [
        _failover_engine(liveness).run(_montage_ensemble(2)) for _ in range(2)
    ]
    result = results[0]
    assert result.liveness_stats["failovers"] == 1
    for counts in result.job_counts.values():
        assert counts["completed"] == 20 and counts["dead"] == 0
        assert counts["queued"] == counts["running"] == counts["waiting"] == 0
    # At-least-once execution, exactly-once settlement: the takeover may
    # re-run work, never lose it.
    assert result.jobs_executed >= 40
    kinds = {e.kind for e in result.fault_events}
    assert {"master-fail", "failover"} <= kinds
    # The fenced primary's late appends were refused, not interleaved.
    assert result.journal is not None and result.journal.epoch == 1
    # Deterministic: two identically-seeded runs agree byte for byte.
    assert trace_lines(results[0]) == trace_lines(results[1])
    assert results[0].makespan == results[1].makespan


def test_des_failover_requires_journal():
    with pytest.raises(ValueError, match="journal"):
        PullEngine(small_spec(2), failover=MasterFailoverModel(at=1.0))


# -- DES: admission control --------------------------------------------------
def test_des_admission_gate_sheds_then_admits():
    engine = PullEngine(
        ClusterSpec("m3.2xlarge", 1, filesystem="local"),
        config=fast_cfg(timeout=30.0),
        fault_trace=FaultTrace(),
        admission=AdmissionControl(max_pending_jobs=4, retry_after=0.5),
    )
    # 25 ready mProjectPP jobs against 8 slots: the second workflow's
    # submission meets a real dispatch backlog and is shed, then admitted
    # once the backlog drains.  Everything still settles.
    ensemble = Ensemble.replicated(
        montage_workflow(degree=0.8), 2, interval=0.25
    )
    result = engine.run(ensemble)
    assert result.liveness_stats["shed_submissions"] > 0
    for counts in result.job_counts.values():
        assert counts["completed"] == 143 and counts["dead"] == 0
    assert {e.kind for e in result.fault_events} >= {"admission-shed"}


# -- robustness counters in monitor exports ----------------------------------
def test_robustness_metrics_schema_is_stable():
    plain = PullEngine(small_spec(1), config=fast_cfg()).run(_montage_ensemble())
    stats = robustness_metrics(plain)
    assert stats == dict(
        new_liveness_stats(), dead_letter_depth=0, shed_record_drops=0
    )

    windows = [PartitionWindow(node=1, start=1.0, duration=3.0)]
    chaotic = _partition_engine(windows).run(_montage_ensemble())
    stats = robustness_metrics(chaotic)
    assert stats["lease_fencings"] >= 1
    assert stats["dead_letter_depth"] == 0


def test_chrome_trace_carries_liveness_counters():
    windows = [PartitionWindow(node=1, start=1.0, duration=3.0)]
    engine = PullEngine(
        ClusterSpec("m3.2xlarge", 2, filesystem="moosefs"),
        config=fast_cfg(record=True),
        retry=RetryPolicy(max_attempts=6),
        chaos_models=[NetworkPartitionModel(windows)],
        fault_trace=FaultTrace(),
        liveness=LeaseConfig(heartbeat_interval=0.25, miss_threshold=3),
    )
    result = engine.run(_montage_ensemble())
    document = to_chrome_trace(result)
    liveness = document["otherData"]["liveness"]
    assert liveness == result.liveness_stats
    fault_names = {
        e["name"] for e in document["traceEvents"] if e.get("cat") == "fault"
    }
    assert {"partition-start", "partition-heal", "lease-fence"} <= fault_names


# -- game day ----------------------------------------------------------------
def test_game_day_scenario_settles_and_is_deterministic():
    reports = [run_chaos(get_scenario("game-day")) for _ in range(2)]
    report = reports[0]
    assert report.ok, report.summary()
    stats = report.liveness_stats
    assert stats["failovers"] == 1
    assert stats["partitions"] >= 1
    assert stats["lease_fencings"] >= 1
    assert stats["shed_submissions"] >= 1
    assert stats["stale_epoch_acks"] >= 1
    assert report.fault_counts.get("spot-termination", 0) >= 1
    assert report.n_dead == 0
    assert reports[0].trace_text == reports[1].trace_text
    assert reports[0].makespan == reports[1].makespan


def test_partition_scenario_ok():
    report = run_chaos(get_scenario("partition"))
    assert report.ok, report.summary()
    assert report.liveness_stats["partitions"] >= 1
    assert report.liveness_stats["lease_fencings"] >= 1
