"""Tests for the shared DAG state machine."""

import pytest

from repro.dewe import JobStatus, WorkflowState
from repro.workflow import Workflow


def chain3() -> Workflow:
    wf = Workflow("chain")
    for jid in ("a", "b", "c"):
        wf.new_job(jid, "t", runtime=1.0)
    wf.add_dependency("a", "b")
    wf.add_dependency("b", "c")
    return wf


def fan() -> Workflow:
    wf = Workflow("fan")
    wf.new_job("src", "t")
    for i in range(3):
        wf.new_job(f"mid{i}", "t")
        wf.add_dependency("src", f"mid{i}")
    wf.new_job("sink", "t")
    for i in range(3):
        wf.add_dependency(f"mid{i}", "sink")
    return wf


def test_initial_ready_roots_only():
    state = WorkflowState(chain3())
    assert state.initial_ready() == ["a"]
    assert state.status["a"] is JobStatus.QUEUED
    assert state.status["b"] is JobStatus.WAITING


def test_completion_unlocks_children():
    state = WorkflowState(chain3())
    state.initial_ready()
    assert state.on_completed("a", 1) == ["b"]
    assert state.on_completed("b", 1) == ["c"]
    assert state.on_completed("c", 1) == []
    assert state.is_complete


def test_fan_in_requires_all_parents():
    state = WorkflowState(fan())
    state.initial_ready()
    mids = state.on_completed("src", 1)
    assert sorted(mids) == ["mid0", "mid1", "mid2"]
    assert state.on_completed("mid0", 1) == []
    assert state.on_completed("mid1", 1) == []
    assert state.on_completed("mid2", 1) == ["sink"]


def test_running_ack_arms_deadline():
    state = WorkflowState(chain3(), default_timeout=60.0)
    state.initial_ready()
    assert state.on_running("a", 1, now=10.0)
    assert state.deadline["a"] == pytest.approx(70.0)


def test_job_specific_timeout_overrides_default():
    wf = chain3()
    wf.job("a").timeout = 5.0
    state = WorkflowState(wf, default_timeout=60.0)
    state.initial_ready()
    state.on_running("a", 1, now=0.0)
    assert state.deadline["a"] == pytest.approx(5.0)


def test_expired_resubmits_with_new_attempt():
    state = WorkflowState(chain3(), default_timeout=30.0)
    state.initial_ready()
    state.on_running("a", 1, now=0.0)
    assert state.expired(now=29.0) == []
    assert state.expired(now=30.0) == ["a"]
    assert state.current_attempt("a") == 2
    assert state.status["a"] is JobStatus.QUEUED
    assert state.resubmissions == 1
    # Expired only fires once per timeout.
    assert state.expired(now=31.0) == []


def test_stale_running_ack_ignored_after_resubmission():
    state = WorkflowState(chain3(), default_timeout=30.0)
    state.initial_ready()
    state.on_running("a", 1, now=0.0)
    state.expired(now=30.0)  # attempt becomes 2
    assert not state.on_running("a", 1, now=31.0)  # old worker's late ack
    assert state.on_running("a", 2, now=32.0)


def test_completion_accepted_from_any_attempt():
    """At-least-once: the original (timed-out) worker may still finish."""
    state = WorkflowState(chain3(), default_timeout=30.0)
    state.initial_ready()
    state.on_running("a", 1, now=0.0)
    state.expired(now=30.0)
    newly = state.on_completed("a", 1)  # attempt-1 worker finishes anyway
    assert newly == ["b"]
    # Duplicate completion from the attempt-2 worker is a no-op.
    assert state.on_completed("a", 2) == []
    assert state.n_completed == 1


def test_failed_ack_resubmits_immediately():
    state = WorkflowState(chain3())
    state.initial_ready()
    state.on_running("a", 1, now=0.0)
    assert state.on_failed("a", 1) == "a"
    assert state.current_attempt("a") == 2
    assert state.status["a"] is JobStatus.QUEUED
    # Stale failure ack ignored.
    assert state.on_failed("a", 1) is None


def test_completed_job_never_expires():
    state = WorkflowState(chain3(), default_timeout=30.0)
    state.initial_ready()
    state.on_running("a", 1, now=0.0)
    state.on_completed("a", 1)
    assert state.expired(now=100.0) == []


def test_counts_and_progress():
    state = WorkflowState(fan())
    state.initial_ready()
    counts = state.counts()
    assert counts["queued"] == 1
    assert counts["waiting"] == 4
    assert state.n_jobs == 5
    assert not state.is_complete


def test_validation_on_construction():
    wf = chain3()
    wf.add_dependency("c", "a")  # cycle
    with pytest.raises(Exception):
        WorkflowState(wf)
    with pytest.raises(ValueError):
        WorkflowState(chain3(), default_timeout=0.0)
