"""Tests for ensembles and submission plans."""

import pytest

from repro.generators import montage_workflow
from repro.workflow import Ensemble, SubmissionPlan


def test_batch_plan():
    plan = SubmissionPlan.batch(4)
    assert plan.times == (0.0, 0.0, 0.0, 0.0)


def test_incremental_plan():
    plan = SubmissionPlan.incremental(3, 100.0)
    assert plan.times == (0.0, 100.0, 200.0)


def test_incremental_zero_interval_is_batch():
    assert SubmissionPlan.incremental(5, 0.0).times == SubmissionPlan.batch(5).times


def test_plan_validation():
    with pytest.raises(ValueError):
        SubmissionPlan(times=(-1.0,))
    with pytest.raises(ValueError):
        SubmissionPlan(times=(5.0, 1.0))
    with pytest.raises(ValueError):
        SubmissionPlan.incremental(3, -2.0)


def test_replicated_ensemble():
    template = montage_workflow(degree=0.5)
    ens = Ensemble.replicated(template, count=5, interval=50.0)
    assert len(ens) == 5
    names = [wf.name for wf in ens.workflows]
    assert len(set(names)) == 5
    assert ens.plan.times == (0.0, 50.0, 100.0, 150.0, 200.0)
    assert ens.total_jobs == 5 * len(template)
    # Members share the underlying job dict (memory optimisation).
    assert ens.workflows[0].jobs is ens.workflows[1].jobs


def test_ensemble_iteration_order():
    template = montage_workflow(degree=0.5)
    ens = Ensemble.replicated(template, count=3, interval=10.0)
    entries = list(ens)
    assert [t for t, _ in entries] == [0.0, 10.0, 20.0]


def test_ensemble_rejects_duplicates_and_mismatches():
    template = montage_workflow(degree=0.5)
    with pytest.raises(ValueError, match="duplicate"):
        Ensemble([template, template])
    with pytest.raises(ValueError, match="plan has"):
        Ensemble([template], SubmissionPlan.batch(2))
    with pytest.raises(ValueError, match="at least one"):
        Ensemble([])
    with pytest.raises(ValueError):
        Ensemble.replicated(template, count=0)


def test_ensemble_default_plan_is_batch():
    template = montage_workflow(degree=0.5)
    ens = Ensemble([template])
    assert ens.plan.times == (0.0,)
    assert ens.makespan_horizon() == 0.0
