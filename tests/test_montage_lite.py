"""End-to-end tests of the Montage-lite toolchain.

The strongest correctness statement in the repository: a real image
computation (synthetic sky + per-tile background offsets + noise), run
through the actual threaded DEWE v2 daemons as OS subprocesses, produces
a mosaic that (a) reconstructs the true sky — the background solver
works — and (b) is byte-identical to the sequential reference execution,
the paper's §V.A verification methodology.
"""

import numpy as np
import pytest

from repro.dewe import DeweConfig, MasterDaemon, SubprocessExecutor, WorkerDaemon, submit_workflow
from repro.dewe.verify import outputs_digest, run_reference, verify_equivalence
from repro.montage_lite import build_montage_lite_workflow, make_sky
from repro.montage_lite.tools import m_bg_model, m_diff_fit
from repro.mq import Broker
from repro.workflow import validate_workflow

GRID, TILE, SEED = 3, 16, 7

CFG = DeweConfig(
    default_timeout=60.0,
    master_poll_interval=0.005,
    worker_poll_interval=0.01,
    max_concurrent_jobs=4,
)


def test_builder_produces_valid_montage_shape(tmp_path):
    wf = build_montage_lite_workflow(tmp_path, grid=GRID, tile=TILE, seed=SEED)
    validate_workflow(wf)
    counts = wf.count_by_type()
    assert counts["mProjectPP"] == GRID * GRID
    assert counts["mDiffFit"] == 2 * GRID * (GRID - 1)
    assert counts["mBgModel"] == 1
    assert counts["mJpeg"] == 1
    # Raw tiles really exist on disk.
    for i in range(GRID * GRID):
        assert (tmp_path / f"montage-lite/raw_{i:03d}.npy").exists()


def test_background_correction_recovers_sky(tmp_path):
    """The science works: the corrected mosaic matches the true sky far
    better than the raw (offset-contaminated) tiles do."""
    wf = build_montage_lite_workflow(
        tmp_path, grid=GRID, tile=TILE, seed=SEED, subprocess_actions=False
    )
    run_reference(wf)
    mosaic = np.load(tmp_path / "montage-lite/mosaic.npy")
    sky = make_sky(GRID, TILE, SEED)
    corrected_rms = float(np.sqrt(np.mean((mosaic - sky) ** 2)))

    # Raw stitching error: stitch the *uncorrected* projected tiles with
    # the same cropping tool.
    from repro.montage_lite.tools import m_add

    raw_paths = [
        str(tmp_path / f"montage-lite/p_{i:03d}.npy") for i in range(GRID * GRID)
    ]
    raw_mosaic_path = tmp_path / "raw_mosaic.npy"
    m_add(raw_paths, GRID, 2, str(raw_mosaic_path))
    raw_mosaic = np.load(raw_mosaic_path)
    raw_rms = float(np.sqrt(np.mean((raw_mosaic - sky) ** 2)))

    assert corrected_rms < raw_rms / 5
    assert corrected_rms < 2.0  # noise-level reconstruction


def test_dewe_subprocess_run_matches_reference(tmp_path):
    """Paper §V.A: size + MD5 of the final output match between the
    concurrent engine (real subprocesses, multiple workers) and the
    sequential reference (in-process callables)."""
    ref_dir = tmp_path / "ref"
    ref_wf = build_montage_lite_workflow(
        ref_dir, grid=GRID, tile=TILE, seed=SEED, subprocess_actions=False
    )
    run_reference(ref_wf)
    reference = outputs_digest(ref_wf, ref_dir)

    dewe_dir = tmp_path / "dewe"
    dewe_wf = build_montage_lite_workflow(
        dewe_dir, grid=GRID, tile=TILE, seed=SEED, subprocess_actions=True
    )
    broker = Broker()
    with MasterDaemon(broker, CFG) as master:
        workers = [
            WorkerDaemon(broker, SubprocessExecutor(), CFG, name=f"w{k}").start()
            for k in range(2)
        ]
        submit_workflow(broker, dewe_wf)
        assert master.wait(dewe_wf.name, timeout=120.0)
        for w in workers:
            w.stop()
    candidate = outputs_digest(dewe_wf, dewe_dir)
    assert verify_equivalence(reference, candidate) == []
    # The PGM really is an image.
    pgm = (dewe_dir / "montage-lite/mosaic.pgm").read_bytes()
    assert pgm.startswith(b"P5\n")


def test_bg_model_solves_exact_offsets(tmp_path):
    """Unit-level: with a shared overlap strip and no noise the solver
    recovers the planted offsets exactly (up to lstsq tolerance)."""
    rng = np.random.default_rng(3)
    strip = rng.normal(0, 1, (8, 2))  # the sky pixels both tiles see
    offsets = [0.0, 4.25]
    a = np.hstack([rng.normal(0, 1, (8, 6)), strip]) + offsets[0]
    b = np.hstack([strip, rng.normal(0, 1, (8, 6))]) + offsets[1]
    a_path = tmp_path / "p_000.npy"
    b_path = tmp_path / "p_001.npy"
    np.save(a_path, a)
    np.save(b_path, b)
    fit_path = tmp_path / "fit.json"
    m_diff_fit(str(a_path), str(b_path), "h", 1, str(fit_path))
    from repro.montage_lite.tools import m_concat_fit

    table_path = tmp_path / "fits.json"
    m_concat_fit([str(fit_path)], str(table_path))
    corr_path = tmp_path / "corr.json"
    m_bg_model(str(table_path), str(corr_path))
    import json

    corrections = json.loads(corr_path.read_text())["corrections"]
    assert corrections["p_000"] == pytest.approx(0.0, abs=1e-6)
    assert corrections["p_001"] == pytest.approx(4.25, abs=1e-6)


def test_builder_validation(tmp_path):
    with pytest.raises(ValueError):
        build_montage_lite_workflow(tmp_path, grid=1)
    with pytest.raises(ValueError):
        build_montage_lite_workflow(tmp_path, grid=2, tile=2)


def test_cli_dispatch(tmp_path, capsys):
    from repro.montage_lite.__main__ import main

    assert main([]) == 2
    assert "usage" in capsys.readouterr().err
    raw = tmp_path / "raw.npy"
    np.save(raw, np.ones((4, 4)))
    out = tmp_path / "p.npy"
    assert main(["mProjectPP", str(raw), str(out)]) == 0
    assert np.allclose(np.load(out), 1.0)
