"""Unit tests for the fault-injection schedules."""

import pytest

from repro.faults import FaultAction, FaultSchedule, kill_restart_cycle
from repro.sim import Simulator


def test_fault_action_validation():
    with pytest.raises(ValueError):
        FaultAction(-1.0, 0, "kill")
    with pytest.raises(ValueError):
        FaultAction(1.0, -1, "kill")
    with pytest.raises(ValueError):
        FaultAction(1.0, 0, "reboot")


def test_schedule_sorts_actions():
    schedule = FaultSchedule(
        [FaultAction(10.0, 0, "kill"), FaultAction(5.0, 1, "restart")]
    )
    assert [a.time for a in schedule.actions] == [5.0, 10.0]
    assert len(schedule) == 2


def test_install_fires_actions_in_order():
    sim = Simulator()
    log = []
    schedule = FaultSchedule(
        [
            FaultAction(2.0, 0, "kill"),
            FaultAction(7.0, 0, "restart"),
            FaultAction(9.0, 1, "kill"),
        ]
    )
    schedule.install(
        sim,
        start_worker=lambda n: log.append(("start", n, sim.now)),
        kill_worker=lambda n: log.append(("kill", n, sim.now)),
    )
    sim.run()
    assert log == [("kill", 0, 2.0), ("start", 0, 7.0), ("kill", 1, 9.0)]


def test_kill_restart_cycle_same_node():
    schedule = kill_restart_cycle([10.0, 50.0], downtime=5.0)
    assert [(a.time, a.node, a.action) for a in schedule.actions] == [
        (10.0, 0, "kill"),
        (15.0, 0, "restart"),
        (50.0, 0, "kill"),
        (55.0, 0, "restart"),
    ]
    assert schedule.initially_down == ()


def test_kill_restart_cycle_failover_alternates():
    """The paper's two-node test: kill on one node, restart on the other,
    alternating, with the second node initially down."""
    schedule = kill_restart_cycle([10.0, 50.0], downtime=5.0, kill_node=0,
                                  restart_node=1)
    assert [(a.time, a.node, a.action) for a in schedule.actions] == [
        (10.0, 0, "kill"),
        (15.0, 1, "restart"),
        (50.0, 1, "kill"),
        (55.0, 0, "restart"),
    ]
    assert schedule.initially_down == (1,)


def test_kill_restart_cycle_validation():
    with pytest.raises(ValueError):
        kill_restart_cycle([1.0], downtime=-1.0)


def test_kill_restart_cycle_rejects_same_restart_node():
    """restart_node == kill_node would mark the only restart target
    initially-down and deadlock the run; must be rejected."""
    with pytest.raises(ValueError, match="restart_node"):
        kill_restart_cycle([1.0], kill_node=0, restart_node=0)
    # The legitimate spellings still work.
    kill_restart_cycle([1.0], kill_node=0)
    kill_restart_cycle([1.0], kill_node=0, restart_node=1)


def test_repeated_interruptions_still_complete():
    """Multiple kill/restart cycles: 'DEWE v2 is capable of completing the
    execution of the workflow, regardless of number of interruptions'."""
    from repro.cloud import ClusterSpec
    from repro.engines import PullEngine, RunConfig
    from repro.generators import montage_workflow
    from repro.workflow import Ensemble

    template = montage_workflow(degree=0.5)
    spec = ClusterSpec("c3.8xlarge", 1, filesystem="local")
    base = PullEngine(spec).run(Ensemble([template]))
    kill_times = [base.makespan * f for f in (0.2, 0.5, 0.8)]
    schedule = kill_restart_cycle(kill_times, downtime=2.0)
    cfg = RunConfig(default_timeout=20.0, timeout_check_interval=0.5)
    result = PullEngine(spec, config=cfg, fault_schedule=schedule).run(
        Ensemble([template])
    )
    assert result.jobs_executed >= len(template)
    assert len(result.workflow_spans) == 1


def test_two_node_restart_during_blocking_job_costs_the_timeout():
    """The paper's two-node failover during the *blocking* stage: nothing
    else is eligible while mConcatFit/mBgModel runs, so the master only
    discovers the kill when the job's timeout expires — the interruption
    costs ~the blocked job's timeout, not just the downtime."""
    from repro.cloud import ClusterSpec
    from repro.engines import PullEngine, RunConfig
    from repro.generators import montage_workflow
    from repro.monitor.timeline import stage_windows
    from repro.workflow import Ensemble

    timeout = 8.0
    downtime = 1.0
    template = montage_workflow(degree=0.5)
    for job_id in ("mConcatFit", "mBgModel"):
        template.job(job_id).timeout = timeout
    spec = ClusterSpec("c3.8xlarge", 2, filesystem="nfs-central")
    cfg = RunConfig(default_timeout=timeout, timeout_check_interval=0.25)

    # Baseline: one worker daemon at a time (node 1 never started).
    baseline = PullEngine(spec, config=cfg, initially_down=(1,)).run(
        Ensemble([template])
    )
    s2_start, s2_end = next(iter(stage_windows(baseline).values()))

    t_kill = (s2_start + s2_end) / 2  # mid blocking stage
    schedule = kill_restart_cycle(
        [t_kill], downtime=downtime, kill_node=0, restart_node=1
    )
    result = PullEngine(spec, config=cfg, fault_schedule=schedule).run(
        Ensemble([template])
    )
    assert len(result.workflow_spans) == 1
    assert result.resubmissions >= 1
    delta = result.makespan - baseline.makespan
    # The blocked job's timeout dominates the recovery, the downtime alone
    # does not explain it; and recovery is bounded by ~one timeout.
    assert delta > downtime + 1.0
    assert delta <= timeout + 2.0 * timeout  # slack: re-run + checker grid
