"""Tests for type-aware matchmaking on heterogeneous clusters (§II).

The grid-era argument for scheduling: on mixed hardware, critical
(long-running, serializing) jobs must be steered to the fast nodes.
These tests verify the matchmaking knob does that — and that on the
homogeneous clusters the paper targets it changes nothing, which is why
DEWE v2 can drop scheduling entirely.
"""

import pytest

from repro.cloud import ClusterSpec
from repro.engines import PullEngine
from repro.engines.scheduling import CentralDispatchEngine
from repro.generators import montage_workflow
from repro.workflow import Ensemble

MIXED = ClusterSpec(
    "c3.8xlarge",
    4,
    filesystem="nfs-nton",
    node_types=("m3.2xlarge", "m3.2xlarge", "m3.2xlarge", "c3.8xlarge"),
)
HOMO = ClusterSpec("c3.8xlarge", 4, filesystem="nfs-nton")


def neutral_engine(spec, **kwargs):
    """Central dispatch with no Pegasus overheads: isolates matchmaking."""
    return CentralDispatchEngine(
        spec,
        submit_overhead=0.0,
        dispatch_latency=0.0,
        wrapper_cpu=0.0,
        read_miss=None,
        **kwargs,
    )


@pytest.fixture(scope="module")
def template():
    return montage_workflow(degree=1.0)


def blocking_nodes(result):
    return {
        r.node for r in result.records if r.task_type in ("mConcatFit", "mBgModel")
    }


def fast_nodes(result):
    max_speed = max(n.itype.cpu_speed for n in result.cluster.nodes)
    return {
        i for i, n in enumerate(result.cluster.nodes) if n.itype.cpu_speed == max_speed
    }


def test_type_aware_pins_blocking_jobs_to_fast_nodes(template):
    ensemble = Ensemble.replicated(template, 3)
    aware = neutral_engine(MIXED, type_aware=True, long_job_threshold=5.0).run(ensemble)
    assert blocking_nodes(aware) <= fast_nodes(aware)


def test_type_aware_beats_unaware_on_mixed_cluster(template):
    ensemble = Ensemble.replicated(template, 3)
    aware = neutral_engine(MIXED, type_aware=True, long_job_threshold=5.0).run(ensemble)
    unaware = neutral_engine(MIXED, type_aware=False).run(ensemble)
    # Matchmaking may only help (short jobs are unaffected, long jobs are
    # protected from slow cores).
    assert aware.makespan <= unaware.makespan + 1e-6


def test_type_aware_is_noop_on_homogeneous_cluster(template):
    """DEWE v2's premise: with identical nodes there is nothing for the
    matchmaker to decide."""
    ensemble = Ensemble.replicated(template, 2)
    aware = neutral_engine(HOMO, type_aware=True, long_job_threshold=5.0).run(ensemble)
    unaware = neutral_engine(HOMO, type_aware=False).run(ensemble)
    assert aware.makespan == pytest.approx(unaware.makespan, rel=1e-9)


def test_pull_vs_aware_scheduling_across_hardware(template):
    """The full design-space story: pulling wins on homogeneous clusters
    (no overhead to pay), while on mixed hardware informed scheduling
    closes the gap by protecting the blocking stage."""
    ensemble = Ensemble.replicated(template, 3)
    pull_mixed = PullEngine(MIXED).run(ensemble)
    aware_mixed = neutral_engine(
        MIXED, type_aware=True, long_job_threshold=5.0
    ).run(ensemble)
    # On mixed hardware the matchmaker protects the blocking stage, so it
    # is competitive with (or beats) blind pulling.
    assert aware_mixed.makespan <= pull_mixed.makespan * 1.10
    # All jobs ran in both cases.
    assert aware_mixed.jobs_executed == pull_mixed.jobs_executed


def test_short_jobs_not_upgraded(template):
    ensemble = Ensemble([template])
    aware = neutral_engine(
        MIXED, type_aware=True, long_job_threshold=1e9
    ).run(ensemble)
    # Threshold so high nothing qualifies: fan jobs still use slow nodes.
    slow = {i for i in range(4) if aware.cluster.nodes[i].itype.cpu_speed < 1.0}
    used = {r.node for r in aware.records}
    assert used & slow