"""Overload robustness plane: arrivals, quotas, brownout, soak.

Covers the :mod:`repro.service` package and the
:class:`~repro.liveness.ServiceAdmissionPolicy` ladder end to end:
seeded open-loop arrival processes, token-bucket determinism, brownout
class ordering, fair share, the admission boundary, class-aware broker
shedding, backward-compatible dead-letter snapshots and the seeded soak
harness (byte-identical per seed, zero gold sheds at 2x capacity).
"""

import dataclasses
import json

import pytest

from repro.dewe.state import WorkflowState
from repro.generators import montage_workflow
from repro.liveness import (
    AdmissionControl,
    BrownoutController,
    ServiceAdmissionPolicy,
    TokenBucket,
)
from repro.monitor import percentile
from repro.mq.simbroker import SimBroker
from repro.service import (
    OnOffArrivals,
    PoissonArrivals,
    SoakConfig,
    TenantSpec,
    build_workload,
    run_soak,
)
from repro.sim import Simulator

# -- arrival processes -------------------------------------------------------


def test_poisson_arrivals_seeded_and_bounded():
    proc = PoissonArrivals(rate=2.0)
    a = proc.times(horizon=50.0, seed=7)
    b = proc.times(horizon=50.0, seed=7)
    assert a == b  # pure function of (horizon, seed)
    assert a != proc.times(horizon=50.0, seed=8)
    assert all(0.0 <= t < 50.0 for t in a)
    assert list(a) == sorted(a)
    # ~rate * horizon arrivals, loosely (seeded, so this cannot flake).
    assert 50 <= len(a) <= 150


def test_onoff_arrivals_confined_to_on_windows():
    proc = OnOffArrivals(on_rate=5.0, on_duration=10.0, off_duration=10.0)
    trace = proc.times(horizon=40.0, seed=3)
    assert trace == proc.times(horizon=40.0, seed=3)
    assert trace  # the ON windows must actually produce work
    for t in trace:
        in_first = 0.0 <= t < 10.0
        in_second = 20.0 <= t < 30.0
        assert in_first or in_second, f"arrival {t} inside an OFF window"


def test_arrival_process_validation():
    with pytest.raises(ValueError):
        PoissonArrivals(rate=0.0)
    with pytest.raises(ValueError):
        OnOffArrivals(on_rate=1.0, on_duration=0.0, off_duration=1.0)
    with pytest.raises(ValueError):
        OnOffArrivals(on_rate=1.0, on_duration=1.0, off_duration=-1.0)


# -- token bucket ------------------------------------------------------------


def test_token_bucket_refill_is_deterministic():
    a = TokenBucket(rate=1.0, burst=2.0)
    b = TokenBucket(rate=1.0, burst=2.0)
    ops = [(0.0, True), (0.1, True), (0.2, False), (2.5, True)]
    for now, expect in ops:
        assert a.try_take(now) is expect
        assert b.try_take(now) is expect
    assert (a.tokens, a.updated) == (b.tokens, b.updated)


def test_token_bucket_retry_hint_scales_with_deficit():
    bucket = TokenBucket(rate=0.5, burst=1.0)
    assert bucket.try_take(0.0)
    # Empty: one token at 0.5/s is 2 s away — the deterministic
    # retry-after hint attached to a quota shed.
    assert bucket.time_until() == pytest.approx(2.0)
    assert not bucket.try_take(1.0)  # only 0.5 tokens so far
    assert bucket.try_take(2.1)


# -- brownout controller -----------------------------------------------------


def test_brownout_requires_sustained_overshoot():
    ctl = BrownoutController(thresholds=(1.0, 1.5, 2.0), sustain=5.0)
    # A short burst above threshold 1 never browns out.
    assert ctl.observe(1.2, 0.0) == 0
    assert ctl.observe(1.2, 4.0) == 0
    assert ctl.observe(0.2, 4.5) == 0
    # Sustained overshoot does, once the hold window elapses.
    assert ctl.observe(1.2, 10.0) == 0
    assert ctl.observe(1.2, 15.0) == 1
    assert ctl.transitions == [(15.0, 1)]


def test_brownout_release_is_hysteretic():
    ctl = BrownoutController(
        thresholds=(1.0,), sustain=1.0, release=0.75
    )
    ctl.observe(1.5, 0.0)
    assert ctl.observe(1.5, 1.0) == 1
    # Dropping below the threshold but above release * threshold holds
    # the level — no flapping around the trip point.
    assert ctl.observe(0.9, 2.0) == 1
    assert ctl.observe(0.9, 10.0) == 1
    # Below the release bound (sustained) the level drops.
    ctl.observe(0.5, 11.0)
    assert ctl.observe(0.5, 12.5) == 0


# -- the policy ladder -------------------------------------------------------


def _policy(**kw) -> ServiceAdmissionPolicy:
    defaults = dict(
        admission=AdmissionControl(max_pending_jobs=10, retry_after=2.0),
        # Below the gate (overshoot 1.0), as the soak configures it, so
        # the graceful ladder engages before the class-blind backstop.
        brownout=BrownoutController(thresholds=(0.4, 0.8, 1.2), sustain=0.0),
        fair_share_floor=1000,
    )
    defaults.update(kw)
    policy = ServiceAdmissionPolicy(**defaults)
    policy.add_tenant("acme", weight=2.0)
    policy.add_tenant("beta")
    policy.add_tenant("casual", weight=0.5)
    for i in range(50):
        policy.register(f"g{i}", "acme", "gold")
        policy.register(f"s{i}", "beta", "silver")
        policy.register(f"b{i}", "casual", "best_effort")
    return policy


def test_brownout_sheds_by_class_order():
    policy = _policy()
    # Overshoot 0.5 (below the gate), sustained (sustain=0): level 1 —
    # best_effort sheds, silver and gold still admitted.
    assert not policy.decide("b0", 1, backlog=5, now=0.0).admit
    assert policy.decide("s0", 1, backlog=5, now=0.0).admit
    assert policy.decide("g0", 1, backlog=5, now=0.0).admit
    # Level 2 (>= 0.8): silver still admitted but deadline-stretched.
    stretched = policy.decide("s1", 1, backlog=9, now=1.0)
    assert stretched.admit
    assert stretched.timeout_factor == pytest.approx(1.5 * 2.0)
    # Level 3 (>= 1.2): everything but gold sheds — and the brownout
    # stage outranks the (also binding) backlog gate in attribution.
    assert not policy.decide("s2", 1, backlog=13, now=2.0).admit
    assert policy.decide("g1", 1, backlog=13, now=2.0).admit
    assert policy.stats["shed_best_effort"] == 1
    assert policy.stats["shed_silver"] == 1
    assert "shed_gold" not in policy.stats
    reasons = [record.reason for record in policy.sheds]
    assert reasons == ["brownout-l1", "brownout-l3"]


def test_gold_bypasses_backlog_gate_silver_does_not():
    policy = _policy(brownout=BrownoutController(sustain=1e9))
    assert not policy.decide("s0", 1, backlog=10, now=0.0).admit
    assert policy.decide("g0", 1, backlog=10, now=0.0).admit
    # The shed carries the backlog-scaled retry-after hint.
    assert policy.sheds[0].reason == "admission"
    assert policy.sheds[0].retry_after == pytest.approx(2.0)
    assert not policy.decide("s1", 1, backlog=20, now=0.0).admit
    assert policy.sheds[1].retry_after == pytest.approx(4.0)


def test_quota_shed_consumes_no_fair_share_and_hints_refill():
    policy = ServiceAdmissionPolicy(
        admission=AdmissionControl(max_pending_jobs=100),
        fair_share_floor=1000,
    )
    policy.add_tenant("acme", quota=TokenBucket(rate=0.5, burst=1.0))
    for i in range(3):
        policy.register(f"w{i}", "acme", "gold")
    assert policy.decide("w0", 5, backlog=0, now=0.0).admit
    verdict = policy.decide("w1", 5, backlog=0, now=0.0)
    assert not verdict.admit
    assert verdict.reason == "quota"
    assert verdict.retry_after == pytest.approx(2.0)
    # Sheds charge nothing: only the admitted workflow is outstanding.
    assert policy.total_outstanding == 5
    assert policy.decide("w2", 5, backlog=0, now=2.1).admit


def test_fair_share_bounds_dominant_tenant_and_refunds_quota():
    policy = ServiceAdmissionPolicy(
        admission=AdmissionControl(max_pending_jobs=1000),
        brownout=BrownoutController(sustain=1e9),
        max_share=0.6,
        fair_share_floor=10,
    )
    policy.add_tenant("hog", quota=TokenBucket(rate=100.0, burst=100.0))
    policy.add_tenant("meek")
    for i in range(10):
        policy.register(f"h{i}", "hog", "gold")
        policy.register(f"m{i}", "meek", "gold")
    # Under the floor any share goes: the hog takes the empty service.
    assert policy.decide("h0", 8, backlog=0, now=0.0).admit
    tokens_before = policy._tenants["hog"].bucket.tokens
    # 16/16 = 100% > the 60% bound: fair-share shed, and the quota token
    # the attempt consumed is refunded — a shed costs no budget.
    verdict = policy.decide("h1", 8, backlog=0, now=0.0)
    assert not verdict.admit
    assert verdict.reason == "fair-share"
    assert policy._tenants["hog"].bucket.tokens == tokens_before
    # The other tenant still gets in: 8/16 = 50% < 60%.
    assert policy.decide("m0", 8, backlog=0, now=0.0).admit
    # Settlement releases the hog's charge, so it may submit again.
    policy.settle("h0")
    policy.settle("h0")  # idempotent: duplicate settle is a no-op
    assert policy.total_outstanding == 8
    assert policy.decide("h2", 8, backlog=0, now=0.0).admit


def test_admission_boundary_is_exact():
    gate = AdmissionControl(max_pending_jobs=64, retry_after=1.0)
    assert gate.admits(63)
    assert not gate.admits(64)
    assert gate.retry_hint(32) == pytest.approx(1.0)   # floor: never < base
    assert gate.retry_hint(128) == pytest.approx(2.0)  # 2x overshoot


# -- workload builder --------------------------------------------------------


def test_build_workload_merges_tags_and_is_deterministic():
    template = montage_workflow(degree=0.1)
    tenants = [
        TenantSpec("t0", "gold", PoissonArrivals(rate=0.5)),
        TenantSpec("t1", "best_effort", PoissonArrivals(rate=1.0)),
    ]
    load = build_workload(tenants, template, horizon=60.0, seed=4)
    again = build_workload(tenants, template, horizon=60.0, seed=4)
    assert [w.name for w in load.ensemble.workflows] == [
        w.name for w in again.ensemble.workflows
    ]
    times = load.ensemble.plan.times
    assert list(times) == sorted(times)
    assert len(times) == len(load.ensemble.workflows)
    counts = load.per_tenant_counts
    assert set(counts) == {"t0", "t1"}
    for name, (tenant, sla) in load.tags.items():
        assert name.startswith(tenant + ".")
        assert sla in ("gold", "best_effort")
    policy = load.wire(ServiceAdmissionPolicy())
    assert policy.rank_of(load.ensemble.workflows[0].name) in (0, 2)


def test_build_workload_rejects_bad_input():
    template = montage_workflow(degree=0.1)
    with pytest.raises(ValueError):
        build_workload([], template, horizon=10.0, seed=0)
    dup = [
        TenantSpec("t0", "gold", PoissonArrivals(rate=1.0)),
        TenantSpec("t0", "silver", PoissonArrivals(rate=1.0)),
    ]
    with pytest.raises(ValueError):
        build_workload(dup, template, horizon=10.0, seed=0)


# -- class-aware broker shedding --------------------------------------------


def test_simbroker_classed_publish_evicts_more_sheddable():
    sim = Simulator()
    broker = SimBroker(sim, latency=0.0, limits={"work": 2})
    assert broker.publish("work", "be-1", klass=2, tag=("casual", "best_effort"))
    assert broker.publish("work", "be-2", klass=2, tag=("casual", "best_effort"))
    # Gold dispatches at capacity displace the queued best-effort ones.
    assert broker.publish("work", "gold-1", klass=0, tag=("acme", "gold"))
    assert list(broker.shed_records) == [
        ("work", ("casual", "best_effort"), "evicted")
    ]
    assert broker.publish("work", "gold-2", klass=0, tag=("acme", "gold"))
    assert broker.shed_records[-1][2] == "evicted"
    # The reverse never happens: best_effort cannot displace gold — the
    # incoming publish itself is the one dropped.
    assert not broker.publish("work", "be-3", klass=2, tag=("casual", "best_effort"))
    assert broker.shed_records[-1] == (
        "work", ("casual", "best_effort"), "incoming"
    )
    assert broker.shed == {"work": 3}


def test_simbroker_untagged_messages_are_never_evicted():
    sim = Simulator()
    broker = SimBroker(sim, latency=0.0, limits={"work": 1})
    assert broker.publish("work", "legacy")  # klass=None
    assert not broker.publish("work", "gold", klass=0, tag=("acme", "gold"))
    assert list(broker.shed_records) == [("work", ("acme", "gold"), "incoming")]


# -- dead-letter attribution and snapshot compatibility ----------------------


def test_dead_letter_snapshot_loads_pre_service_rows():
    wf = montage_workflow(degree=0.1)
    state = WorkflowState(wf, tenant="acme", sla="gold")
    snap = state.snapshot()
    assert snap["tenant"] == "acme"
    # Simulate a snapshot written before tenant/SLA attribution existed:
    # 5-element dead-letter rows and no tenant fields.
    snap["dead_letters"] = [["wf", "job-1", 3, "failed", 12.5]]
    del snap["tenant"], snap["sla"]
    snap["name"] = wf.name
    restored = WorkflowState.restore(wf, snap)
    assert restored.tenant == ""
    entry = restored.dead_letters[0]
    assert (entry.workflow, entry.job_id, entry.attempts) == ("wf", "job-1", 3)
    assert (entry.tenant, entry.sla) == ("", "")
    # New-style 7-element rows round-trip the attribution.
    snap["dead_letters"] = [["wf", "job-2", 1, "timeout", 3.0, "acme", "gold"]]
    restored = WorkflowState.restore(wf, snap)
    assert (restored.dead_letters[0].tenant, restored.dead_letters[0].sla) == (
        "acme", "gold",
    )


# -- percentile helper -------------------------------------------------------


def test_percentile_is_nearest_rank():
    values = [4.0, 1.0, 3.0, 2.0]
    assert percentile(values, 0.50) == 2.0  # no interpolation
    assert percentile(values, 0.99) == 4.0
    assert percentile([], 0.5) == 0.0
    with pytest.raises(ValueError):
        percentile(values, 1.5)


# -- the soak harness --------------------------------------------------------


def _mini_soak(seed: int = 0) -> SoakConfig:
    """A seconds-scale soak that still runs at 2x capacity."""
    return dataclasses.replace(
        SoakConfig.quick(seed=seed),
        horizon=60.0,
        burst_on=10.0,
        burst_off=10.0,
        brownout_sustain=2.0,
    )


def test_soak_protects_gold_and_sheds_best_effort():
    report = run_soak(_mini_soak())
    assert report.ok, report.problems
    assert report.classes["gold"]["shed"] == 0
    assert report.classes["best_effort"]["shed"] > 0
    # Percentiles exist for every class that completed work.
    for row in report.classes.values():
        if row["completed"]:
            assert row["p99_slowdown"] >= row["p50_slowdown"] >= 1.0
    # Backlog stayed bounded (also enforced inside report.problems).
    assert report.peak_backlog <= 4 * _mini_soak().admission_max_pending
    # The report is machine-readable and carries the ladder counters.
    payload = json.loads(report.to_json())
    assert payload["liveness"]["shed_submissions"] > 0


def test_bench_compare_gates_exact_service_counters():
    from repro.parallel.bench import compare_benchmarks

    snap = {
        "quick": True,
        "benchmarks": {
            "service_soak": {
                "rate": 3.0,
                "exact": {"shed_gold": 0, "admitted": 100},
            }
        },
    }
    same = {
        "quick": True,
        "benchmarks": {
            "service_soak": {
                "rate": 2.5,  # within 30%
                "exact": {"shed_gold": 0, "admitted": 100},
            }
        },
    }
    assert compare_benchmarks(same, snap, tolerance=0.30) == []
    drifted = {
        "quick": True,
        "benchmarks": {
            "service_soak": {
                "rate": 3.0,
                "exact": {"shed_gold": 2, "admitted": 100},
            }
        },
    }
    failures = compare_benchmarks(drifted, snap, tolerance=0.30)
    assert len(failures) == 1 and "shed_gold" in failures[0]
    # Quick-vs-full comparisons gate rates only, never the counters.
    full = dict(drifted, quick=False)
    assert compare_benchmarks(full, snap, tolerance=0.30) == []


def test_soak_is_byte_identical_per_seed():
    a = run_soak(_mini_soak(seed=5)).to_json()
    b = run_soak(_mini_soak(seed=5)).to_json()
    assert a == b
    assert a != run_soak(_mini_soak(seed=6)).to_json()
