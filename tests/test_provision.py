"""Tests for the profiling-based provisioning strategy (paper §IV)."""

import pytest

from repro.generators import montage_workflow
from repro.provision import (
    PAPER_INDICES,
    ProfilingCampaign,
    converged_index,
    node_performance_index,
    plan_cluster,
    plan_table,
    required_nodes,
)


# ---------------------------------------------------------------------------
# Equations 1 and 2
# ---------------------------------------------------------------------------


def test_eq1_definition():
    # 20 workflows, 4 nodes, 2500 s -> P = 20 / (4 * 2500) = 0.002
    assert node_performance_index(20, 4, 2500.0) == pytest.approx(0.002)


def test_eq2_paper_table3_sizes():
    """§V.B: with W=200, T=3300 and the §IV.B indices, the designed
    clusters are 40 c3, 25 r3 and 23 i2 nodes."""
    assert required_nodes(200, 0.0015, 3300.0) == 41  # ceil(40.40)
    # The paper rounds to the published sizes; the planner's ceil is the
    # safe choice (never undershoot the deadline) and differs by at most
    # one node from Table III.
    assert required_nodes(200, 0.0024, 3300.0) == 26
    assert required_nodes(200, 0.0026, 3300.0) == 24


def test_eq1_eq2_roundtrip():
    p = node_performance_index(20, 4, 2500.0)
    n = required_nodes(40, p, 2500.0)
    assert n == 8  # double the workload at the same deadline -> double nodes


def test_eq_validation():
    with pytest.raises(ValueError):
        node_performance_index(0, 1, 1.0)
    with pytest.raises(ValueError):
        node_performance_index(1, 0, 1.0)
    with pytest.raises(ValueError):
        node_performance_index(1, 1, 0.0)
    with pytest.raises(ValueError):
        required_nodes(1, 0.0, 1.0)
    with pytest.raises(ValueError):
        required_nodes(1, 1.0, -1.0)


def test_converged_index_uses_tail():
    assert converged_index([0.004, 0.003, 0.002, 0.0015, 0.0015]) == pytest.approx(
        0.0015
    )
    assert converged_index([0.002], tail=2) == pytest.approx(0.002)
    with pytest.raises(ValueError):
        converged_index([])


# ---------------------------------------------------------------------------
# Planner (Table III)
# ---------------------------------------------------------------------------


def test_plan_cluster_with_paper_index():
    plan = plan_cluster("r3.8xlarge", workflows=200, deadline=3300.0)
    assert plan.spec.instance_type == "r3.8xlarge"
    assert plan.spec.n_nodes in (25, 26)
    assert plan.meets_deadline
    assert plan.predicted_cost > 0
    assert plan.price_per_workflow == pytest.approx(plan.predicted_cost / 200)


def test_plan_table_covers_all_types():
    plans = plan_table()
    assert {p.spec.instance_type for p in plans} == set(PAPER_INDICES)
    for plan in plans:
        assert plan.meets_deadline


def test_plan_cheapest_is_c3():
    """Table III / Fig 11c: at W=200 the designed c3 cluster is the
    cheapest per hour; i2 is by far the most expensive."""
    plans = {p.spec.instance_type: p for p in plan_table()}
    assert (
        plans["c3.8xlarge"].predicted_cost
        < plans["r3.8xlarge"].predicted_cost
        < plans["i2.8xlarge"].predicted_cost
    )


def test_plan_requires_known_index():
    with pytest.raises(ValueError, match="profile it first"):
        plan_cluster("m3.2xlarge", workflows=10, deadline=3600.0)


def test_plan_validation():
    with pytest.raises(ValueError):
        plan_cluster("c3.8xlarge", workflows=0, deadline=100.0)


# ---------------------------------------------------------------------------
# Profiling campaign (Fig 5) — scaled-down degree for test speed
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def campaign():
    return ProfilingCampaign(montage_workflow(degree=1.0))


def test_single_node_profile_monotone(campaign):
    profile = campaign.single_node("c3.8xlarge", workflow_counts=(1, 3, 6))
    times = profile.execution_times
    assert times[0] < times[1] < times[2]  # Fig 5a: grows with workload


def test_single_node_roughly_linear(campaign):
    profile = campaign.single_node("c3.8xlarge", workflow_counts=(2, 4, 8))
    t2, t4, t8 = profile.execution_times
    # Fig 5a: doubling the workload roughly doubles the time once the node
    # is saturated (generous band: stage-2 overlap makes it sublinear).
    assert 1.2 < t8 / t4 < 2.4
    assert 1.1 < t4 / t2 < 2.4


def test_multi_node_profile_decreasing(campaign):
    profile = campaign.multi_node("c3.8xlarge", node_counts=(2, 4, 6), workflows=12)
    times = profile.execution_times
    assert times[0] > times[-1]  # Fig 5b: more nodes -> faster


def test_multi_node_index_degrades(campaign):
    """Fig 5c: the node performance index falls as the cluster grows."""
    profile = campaign.multi_node("c3.8xlarge", node_counts=(2, 4, 6), workflows=12)
    assert profile.indices[0] > profile.indices[-1]
    assert profile.converged == pytest.approx(
        (profile.indices[-1] + profile.indices[-2]) / 2
    )


def test_disk_heavy_types_profile_faster(campaign):
    """Fig 5a ordering at 10 workflows: i2 <= r3 <= c3."""
    t = {}
    for itype in ("c3.8xlarge", "i2.8xlarge"):
        profile = campaign.single_node(itype, workflow_counts=(10,))
        t[itype] = profile.execution_times[0]
    assert t["i2.8xlarge"] <= t["c3.8xlarge"]
