"""Property-based tests for the WorkflowState machine.

The master daemon must keep the DAG state consistent under any
interleaving of running acks, completion acks (possibly duplicated or
stale), failures and timeouts — at-least-once delivery guarantees nothing
about ordering.  Hypothesis drives random event sequences against the
state machine and checks the safety invariants after every step.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dewe.state import JobStatus, WorkflowState
from repro.generators import random_layered_workflow


def check_invariants(state: WorkflowState) -> None:
    completed = 0
    for job_id, status in state.status.items():
        job = state.workflow.job(job_id)
        if status is JobStatus.COMPLETED:
            completed += 1
        # Pending counts never go negative and match unfinished parents.
        unfinished = sum(
            1
            for p in job.parents
            if state.status[p] is not JobStatus.COMPLETED
        )
        assert state.pending[job_id] == unfinished
        # A queued/running job never has unfinished parents.
        if status in (JobStatus.QUEUED, JobStatus.RUNNING):
            assert unfinished == 0
    assert state.n_completed == completed
    assert state.is_complete == (completed == state.n_jobs)


@given(
    seed=st.integers(min_value=0, max_value=500),
    n_jobs=st.integers(min_value=2, max_value=30),
    script=st.lists(
        st.tuples(
            st.sampled_from(["running", "complete", "fail", "timeout", "stale"]),
            st.integers(min_value=0, max_value=10_000),
        ),
        min_size=1,
        max_size=120,
    ),
)
@settings(max_examples=60, deadline=None)
def test_state_machine_safe_under_any_event_order(seed, n_jobs, script):
    wf = random_layered_workflow(n_jobs=n_jobs, n_levels=4, seed=seed)
    state = WorkflowState(wf, default_timeout=10.0, validate=False)
    dispatchable = list(state.initial_ready())
    now = 0.0
    for action, pick in script:
        check_invariants(state)
        if not dispatchable and action in ("running", "complete", "fail", "stale"):
            continue
        if action == "timeout":
            now += 20.0
            dispatchable.extend(state.expired(now))
            continue
        job_id = dispatchable[pick % len(dispatchable)]
        attempt = state.current_attempt(job_id)
        if action == "running":
            state.on_running(job_id, attempt, now)
        elif action == "complete":
            newly = state.on_completed(job_id, attempt)
            dispatchable.extend(newly)
            if state.status[job_id] is JobStatus.COMPLETED and job_id in dispatchable:
                dispatchable = [j for j in dispatchable if j != job_id]
        elif action == "fail":
            if state.on_failed(job_id, attempt) is not None:
                pass  # job re-queued under a fresh attempt
        elif action == "stale":
            # Acks from a long-dead attempt must all be no-ops.
            state.on_running(job_id, attempt + 17, now)
            state.on_failed(job_id, attempt + 17)
    check_invariants(state)


@given(seed=st.integers(min_value=0, max_value=500))
@settings(max_examples=30, deadline=None)
def test_driving_to_completion_always_terminates(seed):
    """Completing every queued job in FIFO order finishes the workflow."""
    wf = random_layered_workflow(n_jobs=25, n_levels=5, seed=seed)
    state = WorkflowState(wf, validate=False)
    queue = list(state.initial_ready())
    steps = 0
    while queue:
        job_id = queue.pop(0)
        state.on_running(job_id, state.current_attempt(job_id), 0.0)
        queue.extend(state.on_completed(job_id, state.current_attempt(job_id)))
        steps += 1
        assert steps <= len(wf) + 1
    assert state.is_complete
    assert state.n_completed == len(wf)


@given(
    seed=st.integers(min_value=0, max_value=200),
    duplicate_every=st.integers(min_value=1, max_value=5),
)
@settings(max_examples=30, deadline=None)
def test_duplicate_completions_are_idempotent(seed, duplicate_every):
    wf = random_layered_workflow(n_jobs=20, n_levels=4, seed=seed)
    state = WorkflowState(wf, validate=False)
    queue = list(state.initial_ready())
    i = 0
    while queue:
        job_id = queue.pop(0)
        attempt = state.current_attempt(job_id)
        queue.extend(state.on_completed(job_id, attempt))
        i += 1
        if i % duplicate_every == 0:
            assert state.on_completed(job_id, attempt) == []
            assert state.on_completed(job_id, attempt + 3) == []
    assert state.is_complete
    assert state.n_completed == len(wf)
