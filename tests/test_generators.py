"""Tests for the workflow generators, including paper-anchored counts."""

import pytest

from repro.generators import (
    cybershake_workflow,
    ligo_workflow,
    montage_workflow,
    random_layered_workflow,
)
from repro.generators.montage import montage_grid_size
from repro.workflow import validate_workflow
from repro.workflow.analysis import summarize

# ---------------------------------------------------------------------------
# Montage
# ---------------------------------------------------------------------------


def test_montage_6deg_matches_paper_counts():
    """Paper §II: a 6.0-degree workflow has 8,586 jobs, 1,444 input files
    (4.0 GB) and ~22,850 intermediate files (~35 GB)."""
    wf = montage_workflow(degree=6.0)
    stats = summarize(wf)
    assert stats.n_jobs == 8586
    assert stats.n_input_files == 1444
    assert stats.input_bytes == pytest.approx(4.0e9, rel=1e-6)
    assert abs(stats.n_intermediate_files - 22850) <= 10
    assert stats.intermediate_bytes == pytest.approx(35.0e9, rel=0.02)


def test_montage_6deg_job_type_mix():
    wf = montage_workflow(degree=6.0)
    counts = wf.count_by_type()
    assert counts["mProjectPP"] == 1444
    assert counts["mBackground"] == 1444
    assert counts["mDiffFit"] == 5692
    for singleton in ("mConcatFit", "mBgModel", "mImgTbl", "mAdd", "mShrink", "mJpeg"):
        assert counts[singleton] == 1


def test_montage_valid_structure():
    validate_workflow(montage_workflow(degree=1.0))


def test_montage_job_count_scales_with_degree():
    small = montage_workflow(degree=1.0)
    large = montage_workflow(degree=2.0)
    assert len(large) > len(small) * 3  # area scaling ~ degree^2


def test_montage_grid_size():
    assert montage_grid_size(6.0) == 38
    assert montage_grid_size(3.0) == 19
    assert montage_grid_size(0.1) == 2  # floor
    with pytest.raises(ValueError):
        montage_grid_size(0.0)


def test_montage_diff_fit_depends_on_two_projections():
    wf = montage_workflow(degree=0.5)
    for job in wf:
        if job.task_type == "mDiffFit":
            assert len(job.parents) == 2
            assert all(p.startswith("mProjectPP") for p in job.parents)


def test_montage_background_gated_by_bgmodel():
    wf = montage_workflow(degree=0.5)
    for job in wf:
        if job.task_type == "mBackground":
            assert "mBgModel" in job.parents


def test_montage_deterministic_without_jitter():
    a = montage_workflow(degree=0.5)
    b = montage_workflow(degree=0.5)
    assert [j.runtime for j in a] == [j.runtime for j in b]


def test_montage_jitter_changes_runtimes_reproducibly():
    a = montage_workflow(degree=0.5, jitter=0.1, seed=1)
    b = montage_workflow(degree=0.5, jitter=0.1, seed=1)
    c = montage_workflow(degree=0.5, jitter=0.1, seed=2)
    assert [j.runtime for j in a] == [j.runtime for j in b]
    assert [j.runtime for j in a] != [j.runtime for j in c]


def test_montage_parallel_blocking_jobs_flag():
    wf = montage_workflow(degree=0.5, parallel_blocking_jobs=True)
    assert wf.job("mConcatFit").threads > 1
    assert wf.job("mBgModel").threads > 1
    wf_default = montage_workflow(degree=0.5)
    assert wf_default.job("mConcatFit").threads == 1


def test_montage_rejects_bad_args():
    with pytest.raises(ValueError):
        montage_workflow(degree=-1.0)
    with pytest.raises(ValueError):
        montage_workflow(degree=1.0, jitter=-0.5)


# ---------------------------------------------------------------------------
# LIGO
# ---------------------------------------------------------------------------


def test_ligo_valid_and_shaped():
    wf = ligo_workflow(blocks=10, group=5)
    validate_workflow(wf)
    counts = wf.count_by_type()
    assert counts["TmpltBank"] == 10
    assert counts["Inspiral"] == 10
    assert counts["Thinca"] == 2
    assert counts["Inspiral2"] == 10
    assert counts["Thinca2"] == 2


def test_ligo_uneven_groups():
    wf = ligo_workflow(blocks=7, group=3)
    validate_workflow(wf)
    assert wf.count_by_type()["Thinca"] == 3  # 3+3+1


def test_ligo_no_blocking_stage():
    from repro.workflow.analysis import stage_decomposition

    wf = ligo_workflow(blocks=10, group=5)
    stages = stage_decomposition(wf)
    # Grouped coincidence never serializes the whole workflow.
    assert stages["stage2"] == []


def test_ligo_rejects_bad_args():
    with pytest.raises(ValueError):
        ligo_workflow(blocks=0)
    with pytest.raises(ValueError):
        ligo_workflow(blocks=5, group=0)


# ---------------------------------------------------------------------------
# CyberShake
# ---------------------------------------------------------------------------


def test_cybershake_valid_and_shaped():
    wf = cybershake_workflow(ruptures=4, variations=3)
    validate_workflow(wf)
    counts = wf.count_by_type()
    assert counts["ExtractSGT"] == 4
    assert counts["SeismogramSynthesis"] == 12
    assert counts["PeakValCalc"] == 12
    assert counts["ZipSeis"] == 1
    assert counts["ZipPSA"] == 1


def test_cybershake_aggregators_depend_on_all_variations():
    wf = cybershake_workflow(ruptures=3, variations=2)
    assert len(wf.job("ZipSeis").parents) == 6
    assert len(wf.job("ZipPSA").parents) == 6


def test_cybershake_rejects_bad_args():
    with pytest.raises(ValueError):
        cybershake_workflow(ruptures=0)


# ---------------------------------------------------------------------------
# Random layered DAGs
# ---------------------------------------------------------------------------


def test_random_dag_valid():
    wf = random_layered_workflow(n_jobs=40, n_levels=6, seed=3)
    validate_workflow(wf)
    assert len(wf) == 40


def test_random_dag_deterministic_per_seed():
    a = random_layered_workflow(n_jobs=30, seed=7)
    b = random_layered_workflow(n_jobs=30, seed=7)
    assert sorted(a.edges()) == sorted(b.edges())
    assert [j.runtime for j in a] == [j.runtime for j in b]


def test_random_dag_levels_clamped_to_jobs():
    wf = random_layered_workflow(n_jobs=3, n_levels=10, seed=0)
    validate_workflow(wf)
    assert len(wf) == 3


def test_random_dag_every_non_root_has_parent():
    wf = random_layered_workflow(n_jobs=50, n_levels=5, seed=1)
    levels0 = [j for j in wf if not j.parents]
    from repro.workflow.analysis import topological_levels

    levels = topological_levels(wf)
    assert all(levels[j.id] == 0 for j in levels0)
