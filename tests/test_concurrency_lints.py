"""The lock-discipline lints CL005-CL009, plus the repo dogfood gate."""

import textwrap
from pathlib import Path

from repro.analysis.codelint import (
    CONCURRENCY_RULES,
    default_rules_for,
    lint_source,
)

ALL_CONC = frozenset({"CL005", "CL006", "CL007", "CL008", "CL009"})


def findings(source: str, rules=ALL_CONC):
    return lint_source(textwrap.dedent(source), "t.py", rules=rules)


def rules_of(source: str, rules=ALL_CONC):
    return [f.rule for f in findings(source, rules)]


# ---------------------------------------------------------------------------
# CL005: guarded attribute without its lock
# ---------------------------------------------------------------------------


def test_cl005_unguarded_access_flagged():
    fs = findings(
        """
        class D:
            _guarded_by_ = {"count": "_lock"}

            def bump(self):
                self.count += 1
        """
    )
    assert [f.rule for f in fs] == ["CL005"]
    assert "D.count" in fs[0].message


def test_cl005_with_lock_clean():
    assert rules_of(
        """
        class D:
            _guarded_by_ = {"count": "_lock"}

            def bump(self):
                with self._lock:
                    self.count += 1
        """
    ) == []


def test_cl005_requires_docstring_clean():
    assert rules_of(
        '''
        class D:
            _guarded_by_ = {"count": "_lock"}

            def bump(self):
                """Increment.

                Requires: ``_lock``
                """
                self.count += 1
        '''
    ) == []


def test_cl005_init_exempt():
    assert rules_of(
        """
        class D:
            _guarded_by_ = {"count": "_lock"}

            def __init__(self):
                self.count = 0
        """
    ) == []


def test_cl005_nested_function_loses_lock_context():
    """A closure may run on another thread: holding the lock at the
    definition site proves nothing about the call site."""
    assert rules_of(
        """
        class D:
            _guarded_by_ = {"count": "_lock"}

            def bump(self):
                with self._lock:
                    def inner():
                        self.count += 1
                    return inner
        """
    ) == ["CL005"]


def test_cl005_wait_for_predicate_runs_under_the_condition():
    """Condition.wait_for re-acquires before evaluating its predicate,
    so the lambda's guarded accesses are properly locked."""
    assert rules_of(
        """
        class D:
            _guarded_by_ = {"count": "_cond"}

            def wait(self):
                with self._cond:
                    self._cond.wait_for(lambda: self.count > 0)
        """
    ) == []


# ---------------------------------------------------------------------------
# CL006: inconsistent lock order
# ---------------------------------------------------------------------------


def test_cl006_opposite_orders_flagged():
    fs = findings(
        """
        class D:
            def ab(self):
                with self._a:
                    with self._b:
                        pass

            def ba(self):
                with self._b:
                    with self._a:
                        pass
        """
    )
    assert all(f.rule == "CL006" for f in fs)
    assert len(fs) == 2  # each cycle-closing edge is reported


def test_cl006_consistent_nesting_clean():
    assert rules_of(
        """
        class D:
            def ab(self):
                with self._a:
                    with self._b:
                        pass

            def also_ab(self):
                with self._a:
                    with self._b:
                        pass
        """
    ) == []


# ---------------------------------------------------------------------------
# CL007: blocking call under a lock
# ---------------------------------------------------------------------------


def test_cl007_sleep_under_lock_flagged():
    assert rules_of(
        """
        import time

        class D:
            def slow(self):
                with self._lock:
                    time.sleep(1.0)
        """
    ) == ["CL007"]


def test_cl007_thread_join_under_lock_flagged():
    assert rules_of(
        """
        class D:
            def stop(self):
                with self._lock:
                    self._thread.join()
        """
    ) == ["CL007"]


def test_cl007_condition_wait_on_held_lock_exempt():
    """Waiting on the condition you hold is the one correct pattern —
    the wait releases it."""
    assert rules_of(
        """
        class D:
            def wait(self):
                with self._cond:
                    self._cond.wait(1.0)
        """
    ) == []


def test_cl007_string_join_not_flagged():
    assert rules_of(
        """
        class D:
            def render(self, parts):
                with self._lock:
                    return ",".join(parts)
        """
    ) == []


def test_cl007_no_lock_no_finding():
    assert rules_of(
        """
        import time

        class D:
            def nap(self):
                time.sleep(1.0)
        """
    ) == []


# ---------------------------------------------------------------------------
# CL008: sleep-polling loops
# ---------------------------------------------------------------------------


def test_cl008_sleep_in_loop_flagged():
    assert rules_of(
        """
        import time

        def poll(q):
            while not q:
                time.sleep(0.05)
        """
    ) == ["CL008"]


def test_cl008_sleep_outside_loop_clean():
    assert rules_of(
        """
        import time

        def settle():
            time.sleep(0.05)
        """
    ) == []


def test_cl008_sleep_after_nested_loop_still_flagged():
    assert rules_of(
        """
        import time

        def poll(items):
            while True:
                for item in items:
                    handle(item)
                time.sleep(0.05)
        """
    ) == ["CL008"]


# ---------------------------------------------------------------------------
# CL009: cross-object guarded access through an annotated container
# ---------------------------------------------------------------------------

_TOPIC_PREAMBLE = """
    import threading
    from typing import Dict

    class Topic:
        _guarded_by_ = {"published": "_cond", "consumed": "_cond"}

        def __init__(self):
            self._cond = threading.Condition(threading.Lock())
            self.published = 0
            self.consumed = 0

        def snapshot(self):
            with self._cond:
                return {"published": self.published}
"""


def test_cl009_container_element_read_under_wrong_lock_flagged():
    """The ``Broker.stats()`` regression shape: topic counters read in a
    comprehension under only the *broker's* lock.  CL005's per-class view
    is blind to this — CL009 must catch it."""
    fs = findings(
        _TOPIC_PREAMBLE
        + """
    class Broker:
        _guarded_by_ = {"_topics": "_lock"}

        def __init__(self):
            self._lock = threading.Lock()
            self._topics: Dict[str, Topic] = {}

        def stats(self):
            with self._lock:
                return {
                    name: {"published": t.published, "consumed": t.consumed}
                    for name, t in self._topics.items()
                }
    """
    )
    assert [f.rule for f in fs] == ["CL009", "CL009"]
    assert "Topic.published" in fs[0].message
    assert "_cond" in fs[0].message


def test_cl009_blind_spot_of_cl005_confirmed():
    """CL005 alone stays silent on the cross-object shape (its analysis
    is lexical per class) — the reason CL009 exists at all."""
    assert rules_of(
        _TOPIC_PREAMBLE
        + """
    class Broker:
        _guarded_by_ = {"_topics": "_lock"}

        def __init__(self):
            self._lock = threading.Lock()
            self._topics: Dict[str, Topic] = {}

        def stats(self):
            with self._lock:
                return {
                    name: t.published for name, t in self._topics.items()
                }
    """,
        rules=frozenset({"CL005", "CL006", "CL007", "CL008"}),
    ) == []


def test_cl009_element_lock_held_clean():
    assert rules_of(
        _TOPIC_PREAMBLE
        + """
    class Broker:
        _guarded_by_ = {"_topics": "_lock"}

        def __init__(self):
            self._lock = threading.Lock()
            self._topics: Dict[str, Topic] = {}

        def drain(self, name):
            with self._lock:
                topic = self._topics.get(name)
            with topic._cond:
                topic.consumed += 1
    """
    ) == []


def test_cl009_locking_accessor_clean():
    """The fixed ``Broker.stats()`` shape: snapshot the container under
    the broker lock, then call each element's own locking accessor."""
    assert rules_of(
        _TOPIC_PREAMBLE
        + """
    class Broker:
        _guarded_by_ = {"_topics": "_lock"}

        def __init__(self):
            self._lock = threading.Lock()
            self._topics: Dict[str, Topic] = {}

        def stats(self):
            with self._lock:
                topics = list(self._topics.items())
            return {name: topic.snapshot() for name, topic in topics}
    """
    ) == []


def test_cl009_subscript_and_values_bindings_flagged():
    fs = findings(
        _TOPIC_PREAMBLE
        + """
    class Broker:
        _guarded_by_ = {"_topics": "_lock"}

        def __init__(self):
            self._lock = threading.Lock()
            self._topics: Dict[str, Topic] = {}

        def poke(self, name):
            with self._lock:
                t = self._topics[name]
                t.published += 1
                for other in self._topics.values():
                    other.consumed += 1
    """
    )
    assert [f.rule for f in fs] == ["CL009", "CL009"]


# ---------------------------------------------------------------------------
# Scoping and dogfood
# ---------------------------------------------------------------------------


def test_threaded_subpackages_get_concurrency_rules():
    assert CONCURRENCY_RULES == ALL_CONC
    assert CONCURRENCY_RULES <= default_rules_for("src/repro/dewe/master.py")
    assert CONCURRENCY_RULES <= default_rules_for("src/repro/mq/broker.py")
    assert not (
        CONCURRENCY_RULES & default_rules_for("src/repro/sim/engine.py")
    )


def _repo_root() -> Path:
    return Path(__file__).resolve().parent.parent


def test_threaded_sources_pass_lock_discipline():
    """Dogfood gate: every threaded production module is clean under the
    full concurrency rule set (recovery included, beyond its defaults)."""
    root = _repo_root() / "src" / "repro"
    problems = []
    for pkg in ("dewe", "mq", "recovery"):
        for path in sorted((root / pkg).glob("*.py")):
            rules = frozenset(default_rules_for(path) | ALL_CONC)
            problems.extend(lint_source(path.read_text(), str(path), rules=rules))
    assert problems == [], "\n".join(str(p) for p in problems)


def test_threaded_test_suites_have_no_polling_sleeps():
    """Satellite gate: the daemon/broker tests wait on events and
    conditions, never on sleep-polling loops (CL008)."""
    tests = _repo_root() / "tests"
    for name in ("test_dewe_daemons.py", "test_tcpbroker.py"):
        path = tests / name
        fs = lint_source(
            path.read_text(), str(path), rules=frozenset({"CL008"})
        )
        assert fs == [], "\n".join(str(f) for f in fs)
