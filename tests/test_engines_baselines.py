"""Tests for the scheduling (Pegasus-like) and DEWE v1 engines."""

import pytest

from repro.cloud import ClusterSpec
from repro.engines import DeweV1Engine, PullEngine, SchedulingEngine
from repro.generators import montage_workflow
from repro.workflow import Ensemble


def spec1(fs="local", nodes=1):
    return ClusterSpec("c3.8xlarge", nodes, filesystem=fs)


def test_scheduling_engine_completes_everything():
    template = montage_workflow(degree=0.5)
    result = SchedulingEngine(spec1()).run(Ensemble([template]))
    assert result.jobs_executed == len(template)
    assert result.makespan > 0


def test_scheduling_respects_precedence():
    template = montage_workflow(degree=0.5)
    result = SchedulingEngine(spec1()).run(Ensemble([template]))
    ends = {r.job_id: r.end for r in result.records}
    starts = {r.job_id: r.start for r in result.records}
    for job in template:
        for parent in job.parents:
            assert ends[parent] <= starts[job.id] + 1e-6


def test_pull_beats_scheduling_on_makespan():
    """The paper's core claim (Fig 6): pulling removes scheduling
    overhead, so DEWE v2 finishes well ahead of Pegasus on the same
    cluster and workload."""
    template = montage_workflow(degree=1.0)
    ensemble = Ensemble([template])
    pull = PullEngine(spec1()).run(ensemble)
    sched = SchedulingEngine(spec1()).run(ensemble)
    assert sched.makespan > pull.makespan * 1.5


def test_scheduling_concurrency_capped_at_20():
    """Fig 6a: Pegasus never exceeds 20 concurrent threads on the
    32-vCPU node."""
    template = montage_workflow(degree=1.0)
    result = SchedulingEngine(spec1()).run(Ensemble([template]))
    for log in result.thread_logs:
        assert max(log.values) <= 20


def test_scheduling_writes_more(capfd):
    """Fig 6c/7c: Pegasus's staging and logs amplify disk writes."""
    template = montage_workflow(degree=0.5)
    ensemble = Ensemble([template])
    pull = PullEngine(spec1()).run(ensemble)
    sched = SchedulingEngine(spec1()).run(ensemble)
    assert sched.total_disk_write_bytes() > pull.total_disk_write_bytes() * 1.5


def test_scheduling_burns_more_cpu():
    """Fig 7b: wrapper overhead shows up as extra CPU time."""
    template = montage_workflow(degree=0.5)
    ensemble = Ensemble([template])
    pull = PullEngine(spec1()).run(ensemble)
    sched = SchedulingEngine(spec1()).run(ensemble)
    assert sched.total_cpu_seconds() > pull.total_cpu_seconds() * 1.2


def test_scheduling_overhead_time_recorded():
    template = montage_workflow(degree=0.5)
    result = SchedulingEngine(spec1()).run(Ensemble([template]))
    assert any(r.overhead_time > 0 for r in result.records)


def test_scheduling_knobs_reduce_to_fast_engine():
    """With every overhead zeroed the scheduling engine approaches the
    pull engine's makespan (ablation sanity)."""
    template = montage_workflow(degree=0.5)
    ensemble = Ensemble([template])
    pull = PullEngine(spec1()).run(ensemble)
    neutral = SchedulingEngine(
        spec1(),
        max_slots_per_node=None,
        submit_overhead=0.0,
        dispatch_latency=0.0,
        wrapper_cpu=0.0,
        read_miss=None,
        output_copy_factor=0.0,
        log_bytes_per_job=0.0,
    ).run(ensemble)
    assert neutral.makespan == pytest.approx(pull.makespan, rel=0.15)


# ---------------------------------------------------------------------------
# DEWE v1
# ---------------------------------------------------------------------------


def test_dewe_v1_completes():
    template = montage_workflow(degree=0.5)
    result = DeweV1Engine(spec1()).run(Ensemble([template]))
    assert result.jobs_executed == len(template)


def test_dewe_v1_runs_workflows_sequentially():
    """DEWE v1 'is only capable of running a single workflow at a time'
    (paper §I): workflow k+1 starts only after workflow k finishes."""
    template = montage_workflow(degree=0.5)
    ensemble = Ensemble.replicated(template, 3)
    result = DeweV1Engine(spec1()).run(ensemble)
    spans = sorted(result.workflow_spans.values())
    for (s1, e1), (s2, _e2) in zip(spans, spans[1:]):
        assert s2 >= e1 - 1e-6


def test_dewe_v2_beats_v1_on_ensembles():
    """Parallel multi-workflow execution is DEWE v2's advantage."""
    template = montage_workflow(degree=0.5)
    ensemble = Ensemble.replicated(template, 4)
    v1 = DeweV1Engine(spec1()).run(ensemble)
    v2 = PullEngine(spec1()).run(ensemble)
    assert v2.makespan < v1.makespan


def test_dewe_v1_staging_shows_as_io_time():
    """Fig 2's communication gaps: staging makes read time visible."""
    template = montage_workflow(degree=0.5)
    v1 = DeweV1Engine(ClusterSpec("m3.2xlarge", 4, filesystem="nfs-nton")).run(
        Ensemble([template])
    )
    read_heavy = [r for r in v1.records if r.task_type == "mDiffFit"]
    assert read_heavy
    assert all(r.read_time > 0 for r in read_heavy)
