"""Miscellaneous engine coverage: cache draining, result accessors,
hypothesis round-trips of serialization under random workflows."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cloud import BillingModel, ClusterSpec
from repro.engines import PullEngine, RunConfig
from repro.generators import montage_workflow, random_layered_workflow
from repro.workflow import Ensemble
from repro.workflow.serialize import workflow_from_dict, workflow_to_dict


def test_drain_caches_extends_run_to_flush():
    template = montage_workflow(degree=0.5)
    spec = ClusterSpec("c3.8xlarge", 1, filesystem="local")
    fast_end = PullEngine(spec, RunConfig(drain_caches=False)).run(
        Ensemble([template])
    )
    drained = PullEngine(spec, RunConfig(drain_caches=True)).run(
        Ensemble([template])
    )
    # Makespan (to last ack) is identical; only the run's internal clock
    # continues while the write-back cache flushes.
    assert drained.makespan == pytest.approx(fast_end.makespan)
    for node in drained.cluster.nodes:
        assert node.write_cache.dirty == pytest.approx(0.0)


def test_result_accessors():
    template = montage_workflow(degree=0.5)
    spec = ClusterSpec("c3.8xlarge", 1, filesystem="local")
    result = PullEngine(spec).run(Ensemble.replicated(template, 2))
    spans = result.workflow_makespans()
    assert len(spans) == 2
    assert result.mean_workflow_makespan() == pytest.approx(
        sum(spans.values()) / 2
    )
    assert result.cost(BillingModel.PER_HOUR) == pytest.approx(1.68)
    assert result.cost(BillingModel.PER_SECOND) == pytest.approx(
        1.68 * result.makespan / 3600
    )
    assert result.total_disk_read_bytes() >= 0.0


def test_empty_like_workflow_single_job():
    from repro.workflow import Workflow

    wf = Workflow("tiny")
    wf.new_job("only", "t", runtime=5.0)
    result = PullEngine(ClusterSpec("c3.8xlarge", 1, filesystem="local")).run(
        Ensemble([wf])
    )
    assert result.jobs_executed == 1
    assert result.makespan == pytest.approx(5.0, abs=0.1)


@given(
    n_jobs=st.integers(min_value=1, max_value=40),
    n_levels=st.integers(min_value=1, max_value=6),
    seed=st.integers(min_value=0, max_value=2_000),
)
@settings(max_examples=40, deadline=None)
def test_serialize_round_trip_random_workflows(n_jobs, n_levels, seed):
    """Serialization is lossless for arbitrary generated workflows."""
    wf = random_layered_workflow(n_jobs=n_jobs, n_levels=n_levels, seed=seed)
    restored = workflow_from_dict(workflow_to_dict(wf))
    assert set(restored.jobs) == set(wf.jobs)
    assert restored.n_edges() == wf.n_edges()
    for job in wf:
        other = restored.job(job.id)
        assert other.runtime == pytest.approx(job.runtime)
        assert sorted(other.parents) == sorted(job.parents)
        assert [f.size for f in other.inputs] == pytest.approx(
            [f.size for f in job.inputs]
        )


@given(seed=st.integers(min_value=0, max_value=500))
@settings(max_examples=10, deadline=None)
def test_serialized_workflow_runs_identically(seed):
    """A deserialized workflow produces the same simulated makespan."""
    wf = random_layered_workflow(n_jobs=25, n_levels=4, seed=seed)
    restored = workflow_from_dict(workflow_to_dict(wf))
    spec = ClusterSpec("c3.8xlarge", 1, filesystem="local")
    a = PullEngine(spec, RunConfig(record_jobs=False)).run(Ensemble([wf]))
    b = PullEngine(spec, RunConfig(record_jobs=False)).run(Ensemble([restored]))
    assert a.makespan == pytest.approx(b.makespan)
