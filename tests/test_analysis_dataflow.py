"""Seeded-defect corpus for the workflow static analyzer.

Each test plants exactly one class of defect in an otherwise healthy DAG
and asserts the analyzer reports it with the right rule id *and* the
right location (job / file).  The clean-workflow tests pin the flip
side: every paper generator must analyze to zero problems, otherwise
``repro-run --lint`` would cry wolf on the reproduction's own inputs.
"""

import pytest

from repro.analysis.dataflow import (
    RULES,
    AnalyzerConfig,
    analyze_ensemble,
    analyze_workflow,
)
from repro.analysis.report import Severity
from repro.generators import (
    cybershake_workflow,
    ligo_workflow,
    montage_workflow,
)
from repro.workflow import DataFile, Ensemble, Workflow


def _base_workflow():
    """A healthy two-job produce/consume chain to seed defects into."""
    wf = Workflow("seeded")
    raw = DataFile("raw.dat", 100.0, "input")
    mid = DataFile("mid.dat", 50.0)
    out = DataFile("final.dat", 10.0, "output")
    wf.new_job("producer", "gen", runtime=1.0, inputs=[raw], outputs=[mid])
    wf.new_job("consumer", "use", runtime=1.0, inputs=[mid], outputs=[out])
    wf.add_dependency("producer", "consumer")
    return wf


def _rules_hit(report):
    return {f.rule for f in report.findings}


def test_clean_base_workflow_has_no_findings():
    report = analyze_workflow(_base_workflow())
    assert report.findings == []
    assert report.ok()


@pytest.mark.parametrize(
    "make",
    [
        lambda: montage_workflow(degree=1.0),
        lambda: ligo_workflow(blocks=2),
        lambda: cybershake_workflow(ruptures=4),
    ],
    ids=["montage", "ligo", "cybershake"],
)
def test_paper_generators_are_clean(make):
    report = analyze_workflow(make())
    assert report.problems == [], [str(f) for f in report.problems]


def test_st001_cycle():
    wf = _base_workflow()
    wf.add_dependency("consumer", "producer")  # closes a cycle
    report = analyze_workflow(wf)
    findings = report.by_rule().get("ST001")
    assert findings, report.render()
    assert findings[0].severity is Severity.ERROR


def test_df001_no_producer():
    wf = _base_workflow()
    ghost = DataFile("ghost.dat", 5.0)  # intermediate nobody writes
    wf.jobs["consumer"].inputs.append(ghost)
    report = analyze_workflow(wf)
    [finding] = report.by_rule()["DF001"]
    assert finding.severity is Severity.ERROR
    assert finding.file_name == "ghost.dat"
    assert finding.job_id == "consumer"


def test_df002_double_producer():
    wf = _base_workflow()
    clash = DataFile("mid.dat", 50.0)  # same name as producer's output
    extra = DataFile("extra.dat", 1.0, "output")
    wf.new_job("rogue", "gen", runtime=1.0, outputs=[clash, extra])
    report = analyze_workflow(wf)
    [finding] = report.by_rule()["DF002"]
    assert finding.severity is Severity.ERROR
    assert finding.file_name == "mid.dat"
    assert finding.job_id == "rogue"
    assert "producer" in finding.message


def test_df003_dead_work():
    wf = _base_workflow()
    dead = DataFile("scratch.dat", 7.0)
    wf.new_job("wasted", "gen", runtime=1.0, outputs=[dead])
    report = analyze_workflow(wf)
    [finding] = report.by_rule()["DF003"]
    assert finding.severity is Severity.WARNING
    assert finding.file_name == "scratch.dat"
    assert finding.job_id == "wasted"


def test_df003_not_raised_for_byproduct_siblings():
    """An unconsumed intermediate next to a live output is a retained run
    product (Montage's diff images), not dead work."""
    wf = _base_workflow()
    byproduct = DataFile("diag.dat", 3.0)
    wf.jobs["producer"].outputs.append(byproduct)
    report = analyze_workflow(wf)
    assert "DF003" not in _rules_hit(report)


def test_df004_consumer_not_descendant():
    wf = _base_workflow()
    out2 = DataFile("other.dat", 1.0, "output")
    # Reads mid.dat but has no dependency path from its producer.
    wf.new_job(
        "racer", "use", runtime=1.0,
        inputs=[wf.jobs["producer"].outputs[0]], outputs=[out2],
    )
    report = analyze_workflow(wf)
    [finding] = report.by_rule()["DF004"]
    assert finding.severity is Severity.ERROR
    assert finding.job_id == "racer"
    assert finding.file_name == "mid.dat"


def test_df004_self_consumption():
    wf = _base_workflow()
    loop = DataFile("loop.dat", 1.0)
    job = wf.jobs["producer"]
    job.inputs.append(loop)
    job.outputs.append(loop)
    report = analyze_workflow(wf)
    [finding] = report.by_rule()["DF004"]
    assert finding.job_id == "producer"
    assert "own output" in finding.message


def test_df004_transitive_dependency_is_fine():
    """Reading a grandparent's output is legal (mImgTbl does this)."""
    wf = _base_workflow()
    mid = wf.jobs["producer"].outputs[0]
    final = DataFile("grand.dat", 1.0, "output")
    wf.new_job("grandchild", "use", runtime=1.0, inputs=[mid], outputs=[final])
    wf.add_dependency("consumer", "grandchild")
    report = analyze_workflow(wf)
    assert "DF004" not in _rules_hit(report)


def test_df005_produced_input():
    wf = _base_workflow()
    fake_input = DataFile("pre.dat", 1.0, "input")
    wf.jobs["producer"].outputs.append(fake_input)
    report = analyze_workflow(wf)
    [finding] = report.by_rule()["DF005"]
    assert finding.severity is Severity.WARNING
    assert finding.file_name == "pre.dat"


def test_cm001_nonpositive_runtime():
    wf = _base_workflow()
    wf.jobs["consumer"].runtime = 0.0
    report = analyze_workflow(wf)
    [finding] = report.by_rule()["CM001"]
    assert finding.severity is Severity.WARNING
    assert finding.job_id == "consumer"


def test_cm002_threads_exceed_catalogue():
    wf = _base_workflow()
    wf.jobs["producer"].threads = 1024
    report = analyze_workflow(wf)
    [finding] = report.by_rule()["CM002"]
    assert finding.severity is Severity.ERROR
    assert finding.job_id == "producer"


def test_cm003_nonpositive_timeout():
    wf = _base_workflow()
    wf.jobs["consumer"].timeout = -5.0
    report = analyze_workflow(wf)
    [finding] = report.by_rule()["CM003"]
    assert finding.severity is Severity.ERROR
    assert finding.job_id == "consumer"


def test_fs001_hotspot_is_info():
    wf = _base_workflow()
    mid = wf.jobs["producer"].outputs[0]
    for i in range(3):
        sink = DataFile(f"sink{i}.dat", 1.0, "output")
        wf.new_job(f"reader{i}", "use", runtime=1.0, inputs=[mid], outputs=[sink])
        wf.add_dependency("producer", f"reader{i}")
    report = analyze_workflow(wf, AnalyzerConfig(hotspot_fanout=2))
    [finding] = report.by_rule()["FS001"]
    assert finding.severity is Severity.INFO
    assert finding.file_name == "mid.dat"
    # INFO never gates a run.
    assert report.ok()


def test_ignore_config_suppresses_rule():
    wf = _base_workflow()
    dead = DataFile("scratch.dat", 7.0)
    wf.new_job("wasted", "gen", runtime=1.0, outputs=[dead])
    report = analyze_workflow(wf, AnalyzerConfig(ignore=frozenset({"DF003"})))
    assert report.findings == []


def test_ensemble_dedupes_relabelled_members():
    ensemble = Ensemble.replicated(montage_workflow(degree=0.25), 5)
    report = analyze_ensemble(ensemble)
    assert report.workflows_analyzed == 1
    assert report.members_analyzed == 5
    assert report.problems == []


def test_ensemble_with_seeded_defect_reports_once():
    wf = _base_workflow()
    wf.jobs["consumer"].timeout = -5.0
    ensemble = Ensemble.replicated(wf, 3)
    report = analyze_ensemble(ensemble)
    assert len(report.by_rule()["CM003"]) == 1


def test_every_rule_has_severity_and_description():
    for rule, (severity, description) in RULES.items():
        assert isinstance(severity, Severity)
        assert description
    # The seeded-defect corpus above covers the whole catalogue.
    covered = {
        "ST001", "DF001", "DF002", "DF003", "DF004", "DF005",
        "CM001", "CM002", "CM003", "FS001",
    }
    assert covered == set(RULES)


def test_report_render_and_json_roundtrip():
    wf = _base_workflow()
    wf.jobs["consumer"].timeout = -5.0
    report = analyze_workflow(wf)
    text = report.render()
    assert "CM003" in text and "1 error(s)" in text
    data = report.to_dict()
    assert data["counts"]["error"] == 1
    assert data["findings"][0]["rule"] == "CM003"
