"""Coverage for report rendering details and remaining small paths."""

import pytest

from repro.cloud import ClusterSpec
from repro.engines import PullEngine, RunConfig
from repro.generators import montage_workflow
from repro.monitor.report import _fmt, format_series, summary_table
from repro.workflow import Ensemble


def test_fmt_floats_and_strings():
    assert _fmt(1.23456) == "1.23"
    assert _fmt("abc") == "abc"
    assert _fmt(7) == "7"


def test_summary_table_missing_keys_blank():
    rows = [{"a": 1, "b": 2}, {"a": 3}]
    text = summary_table(rows)
    lines = text.splitlines()
    assert len(lines) == 4  # header, rule, two rows
    assert "3" in lines[3]


def test_summary_table_explicit_columns():
    rows = [{"a": 1, "b": 2, "c": 3}]
    text = summary_table(rows, columns=("c", "a"))
    header = text.splitlines()[0]
    assert "c" in header and "a" in header and "b" not in header


def test_format_series_no_unit():
    assert format_series("x", [1], [2.0]) == "x: 1:2"


def test_engine_result_rental_spans_default_static():
    template = montage_workflow(degree=0.5)
    result = PullEngine(
        ClusterSpec("c3.8xlarge", 1, filesystem="local"),
        RunConfig(record_jobs=False),
    ).run(Ensemble([template]))
    assert result.rental_spans == {0: [(0.0, result.makespan)]}


def test_cluster_spec_mixed_aggregates():
    spec = ClusterSpec(
        "c3.8xlarge",
        2,
        filesystem="moosefs",
        node_types=("c3.8xlarge", "m3.2xlarge"),
    )
    assert not spec.is_homogeneous
    assert spec.total_vcpus == 32 + 8
    assert spec.price_per_hour == pytest.approx(1.68 + 0.532)
    assert "mixed" in spec.name
    with pytest.raises(ValueError, match="node_types has"):
        ClusterSpec("c3.8xlarge", 3, node_types=("c3.8xlarge",))
