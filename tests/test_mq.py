"""Tests for the threaded broker and the simulated broker."""

import threading

import pytest

from repro.mq import Broker, SimBroker
from repro.sim import Simulator


def test_publish_consume_fifo():
    broker = Broker()
    for i in range(5):
        broker.publish("t", i)
    assert [broker.consume("t") for _ in range(5)] == [0, 1, 2, 3, 4]


def test_consume_empty_returns_none():
    broker = Broker()
    assert broker.consume("t") is None
    assert broker.consume("t", timeout=0.01) is None


def test_consumed_message_invisible_to_others():
    """Work-queue semantics: one consumer checks a message out, the other
    finds the queue empty (paper §III.C: 'the job is no longer visible to
    other worker nodes')."""
    broker = Broker()
    broker.publish("jobs", "only-job")
    assert broker.consume("jobs") == "only-job"
    assert broker.consume("jobs") is None


def test_topics_are_independent():
    broker = Broker()
    broker.publish("a", 1)
    broker.publish("b", 2)
    assert broker.consume("b") == 2
    assert broker.consume("a") == 1


def test_depth_and_stats():
    broker = Broker()
    broker.publish("t", "x")
    broker.publish("t", "y")
    assert broker.depth("t") == 2
    broker.consume("t")
    stats = broker.stats()
    assert stats["t"]["published"] == 2
    assert stats["t"]["consumed"] == 1
    assert stats["t"]["depth"] == 1


def test_concurrent_consumers_each_message_once():
    broker = Broker()
    n = 500
    for i in range(n):
        broker.publish("jobs", i)
    got = []
    lock = threading.Lock()

    def consumer():
        while True:
            msg = broker.consume("jobs")
            if msg is None:
                return
            with lock:
                got.append(msg)

    threads = [threading.Thread(target=consumer) for _ in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert sorted(got) == list(range(n))


def test_reprioritize_races_consumers_without_loss_or_duplication():
    """Live reprioritization against concurrent consumers: every retag
    either lands before the message is consumed or misses it entirely —
    a racing consumer must never see a duplicate, a loss, or a torn
    heap.  Run under REPRO_RACEDETECT this also proves the topic
    condition covers the retag path."""
    broker = Broker()
    n = 400
    for i in range(n):
        broker.publish("jobs", i)
    got = []
    lock = threading.Lock()
    stop = threading.Event()

    def consumer():
        while True:
            msg = broker.consume("jobs", timeout=0.05)
            if msg is None:
                if stop.is_set():
                    return
                continue
            with lock:
                got.append(msg)

    def repriority_caller():
        # Deterministic retag pattern cycling over residue classes so
        # retags keep landing while the queue drains.
        for round_ in range(1, 40):
            residue = round_ % 5
            broker.reprioritize(
                "jobs", lambda m, r=residue: m % 5 == r, float(round_)
            )
        stop.set()

    threads = [threading.Thread(target=consumer) for _ in range(6)]
    threads.append(threading.Thread(target=repriority_caller))
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert sorted(got) == list(range(n))
    stats = broker.stats()["jobs"]
    assert stats["published"] == n
    assert stats["consumed"] == n
    assert stats["depth"] == 0


def test_blocking_consume_wakes_on_publish():
    broker = Broker()
    result = []

    def consumer():
        result.append(broker.consume("t", timeout=5.0))

    t = threading.Thread(target=consumer)
    t.start()
    broker.publish("t", "hello")
    t.join(timeout=5.0)
    assert result == ["hello"]


# ---------------------------------------------------------------------------
# SimBroker
# ---------------------------------------------------------------------------


def test_simbroker_delivery_latency():
    sim = Simulator()
    broker = SimBroker(sim, latency=0.5)
    got = []

    def consumer():
        msg = yield broker.consume("t")
        got.append((msg, sim.now))

    sim.process(consumer())
    broker.publish("t", "m")
    sim.run()
    assert got == [("m", 0.5)]


def test_simbroker_zero_latency():
    sim = Simulator()
    broker = SimBroker(sim, latency=0.0)
    broker.publish("t", 1)
    got = []

    def consumer():
        msg = yield broker.consume("t")
        got.append((msg, sim.now))

    sim.process(consumer())
    sim.run()
    assert got == [(1, 0.0)]


def test_simbroker_fifo_per_topic():
    sim = Simulator()
    broker = SimBroker(sim, latency=0.0)
    for i in range(4):
        broker.publish("t", i)
    got = []

    def consumer():
        for _ in range(4):
            msg = yield broker.consume("t")
            got.append(msg)

    sim.process(consumer())
    sim.run()
    assert got == [0, 1, 2, 3]


def test_simbroker_cancel_consume():
    sim = Simulator()
    broker = SimBroker(sim, latency=0.0)
    pending = broker.consume("t")
    assert broker.cancel("t", pending)
    broker.publish("t", "x")
    sim.run()
    assert broker.depth("t") == 1  # the cancelled getter did not take it


def test_simbroker_negative_latency_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        SimBroker(sim, latency=-1.0)
