"""Partition healing on the real threaded daemons (ChaosBroker shim).

The DES covers partitions with exact clocks (tests/test_liveness.py);
these tests run the genuine multi-threaded master/worker stack against
the :class:`~repro.mq.chaosbroker.ChaosBroker` partition shim, which
holds a cut worker's uplink (acks + heartbeats) in publish order and
replays it through the chaos band on heal.  They are part of the race
detector CI matrix: run them under ``REPRO_RACEDETECT=1``.
"""

import threading
import time

import pytest

from repro.dewe import (
    DeweConfig,
    MasterDaemon,
    WorkerDaemon,
    submit_workflow,
)
from repro.faults import RetryPolicy
from repro.mq import Broker, ChaosBroker, MessageChaos
from repro.mq.messages import (
    TOPIC_ACK,
    TOPIC_DISPATCH,
    TOPIC_HEARTBEAT,
    JobAck,
    AckKind,
    WorkerHeartbeat,
)
from repro.workflow import Workflow


def _poll(predicate, timeout=10.0, interval=0.01):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


def _ack(worker: str, job_id: str = "j", attempt: int = 0) -> JobAck:
    return JobAck(
        workflow_name="wf",
        job_id=job_id,
        kind=AckKind.COMPLETED,
        attempt=attempt,
        worker=worker,
    )


def make_parallel(name: str, n: int, action) -> Workflow:
    wf = Workflow(name)
    for i in range(n):
        wf.new_job(f"{name}-j{i:02d}", "t", runtime=0.0, action=action)
    return wf


# -- ChaosBroker partition shim (unit) ----------------------------------------
def test_chaosbroker_holds_partitioned_uplink_and_heals_in_order():
    broker = ChaosBroker(MessageChaos())
    broker.begin_partition("w1")
    for i in range(3):
        assert broker.publish(TOPIC_ACK, _ack("w1", f"j{i}"))
    assert broker.publish(TOPIC_HEARTBEAT, WorkerHeartbeat(worker="w1"))
    # Another worker's traffic is unaffected.
    assert broker.publish(TOPIC_ACK, _ack("w0", "other"))
    assert broker.depth(TOPIC_ACK) == 1
    assert broker.consume(TOPIC_ACK).worker == "w0"
    stats = broker.chaos_stats()
    assert stats["held"] == 4 and stats["flushed"] == 0

    assert broker.heal_partition("w1") == 4
    # Held messages re-enter in their original publish order.
    flushed = [broker.consume(TOPIC_ACK) for _ in range(3)]
    assert [m.job_id for m in flushed] == ["j0", "j1", "j2"]
    assert broker.consume(TOPIC_HEARTBEAT).worker == "w1"
    assert broker.chaos_stats()["flushed"] == 4
    # Healing an already-healed worker is a no-op.
    assert broker.heal_partition("w1") == 0


def test_chaosbroker_partition_scopes_to_named_topics():
    broker = ChaosBroker(MessageChaos())
    broker.begin_partition(("w1",), topics=(TOPIC_ACK,))
    assert broker.publish(TOPIC_HEARTBEAT, WorkerHeartbeat(worker="w1"))
    assert broker.depth(TOPIC_HEARTBEAT) == 1  # heartbeats still flow
    assert broker.publish(TOPIC_ACK, _ack("w1"))
    assert broker.depth(TOPIC_ACK) == 0  # acks held
    # Messages without a worker attribute (dispatches) are never held.
    assert broker.publish(TOPIC_DISPATCH, ("opaque", "payload"))
    assert broker.depth(TOPIC_DISPATCH) == 1
    assert broker.heal_partition() == 1


# -- bounded topics (backpressure unit) ---------------------------------------
def test_bounded_topic_sheds_at_capacity():
    broker = Broker(topic_limits={TOPIC_DISPATCH: 2})
    assert broker.publish(TOPIC_DISPATCH, "a")
    assert broker.publish(TOPIC_DISPATCH, "b")
    assert not broker.publish(TOPIC_DISPATCH, "c")  # shed, not blocked
    assert broker.depth(TOPIC_DISPATCH) == 2
    assert broker.stats()[TOPIC_DISPATCH]["shed"] == 1
    # Draining re-opens the topic.
    assert broker.consume(TOPIC_DISPATCH) == "a"
    assert broker.publish(TOPIC_DISPATCH, "c")
    with pytest.raises(ValueError):
        Broker(topic_limits={TOPIC_DISPATCH: 0}).topic(TOPIC_DISPATCH)


# -- threaded: partition -> lease fence -> requeue -> heal --------------------
def test_partitioned_worker_is_fenced_and_jobs_requeued():
    cfg = DeweConfig(
        default_timeout=30.0,  # recovery must come from the lease, not timeouts
        master_poll_interval=0.002,
        worker_poll_interval=0.005,
        max_concurrent_jobs=8,
        heartbeat_interval=0.05,
        lease_miss_threshold=2,
    )
    broker = ChaosBroker(MessageChaos())
    gate = threading.Event()
    started = []
    started_lock = threading.Lock()

    def job():
        with started_lock:
            started.append(threading.current_thread().name)
        assert gate.wait(timeout=30.0)

    wf = make_parallel("wf", 16, job)
    with MasterDaemon(broker, cfg) as master, WorkerDaemon(
        broker, config=cfg, name="w0"
    ), WorkerDaemon(broker, config=cfg, name="w1"):
        submit_workflow(broker, wf)
        # 16 gated jobs against two 8-slot workers: both saturate, so the
        # partitioned worker genuinely holds RUNNING deliveries.
        assert _poll(lambda: len(started) == 16), f"started={len(started)}"

        broker.begin_partition("w1")
        assert _poll(
            lambda: master.liveness_stats()["lease_fencings"] >= 1
        ), master.liveness_stats()
        gate.set()
        healed = broker.heal_partition("w1")
        assert healed > 0  # silence was the shim, not a dead worker
        assert master.wait("wf", timeout=20.0)
        stats = master.liveness_stats()

    assert stats["lease_fencings"] >= 1
    assert stats["heartbeat_misses"] >= cfg.lease_miss_threshold
    assert master.dead_letters == []
    # Every job ran (the fenced worker's deliveries were requeued; reruns
    # are allowed, lost jobs are not).
    assert len(started) >= 16
    chaos = broker.chaos_stats()
    assert chaos["held"] > 0 and chaos["flushed"] == chaos["held"]


# -- threaded: duplicate acks across a heal are absorbed ----------------------
def test_acks_flushed_after_heal_are_idempotent():
    cfg = DeweConfig(
        default_timeout=0.3,
        master_poll_interval=0.002,
        worker_poll_interval=0.005,
        max_concurrent_jobs=8,
    )
    broker = ChaosBroker(MessageChaos())
    runs = []
    lock = threading.Lock()

    def job():
        with lock:
            runs.append(1)

    wf = make_parallel("wf", 4, job)
    with MasterDaemon(
        broker, cfg, retry=RetryPolicy(max_attempts=0, redispatch_lost=True)
    ) as master, WorkerDaemon(broker, config=cfg, name="w0"):
        # Partitioned from the start: the worker still pulls dispatches
        # and executes, but every ack is held.  The master's dispatch
        # deadline keeps republishing; the worker keeps re-running.
        broker.begin_partition("w0")
        submit_workflow(broker, wf)
        assert _poll(lambda: len(runs) >= 8)  # at least one full rerun
        assert not master.wait("wf", timeout=0.1)  # blind: cannot settle

        flushed = broker.heal_partition("w0")
        assert flushed >= 8  # stale and fresh attempts replay together
        assert master.wait("wf", timeout=20.0)

    # At-least-once execution, exactly-once settlement: duplicates and
    # stale-attempt acks from before the heal were dropped by the state
    # machine, not double-counted.
    assert len(runs) >= 8
    assert master.dead_letters == []
    assert master.makespans["wf"] >= 0.0


# -- threaded: admission gate --------------------------------------------------
def test_threaded_admission_gate_sheds_then_admits():
    cfg = DeweConfig(
        default_timeout=10.0,
        master_poll_interval=0.002,
        worker_poll_interval=0.005,
        max_concurrent_jobs=8,
        admission_max_pending=1,
        admission_retry_after=0.25,
    )
    broker = Broker()
    runs = []
    lock = threading.Lock()

    def job():
        with lock:
            runs.append(1)

    with MasterDaemon(broker, cfg) as master:
        # No worker yet: wf1's dispatches pile up past the gate.
        submit_workflow(broker, make_parallel("wf1", 4, job))
        assert _poll(lambda: broker.depth(TOPIC_DISPATCH) >= 1)
        submit_workflow(broker, make_parallel("wf2", 4, job))
        assert _poll(lambda: "wf2" in master.shed_submissions)
        # The retry-after hint scales with the backlog overshoot: wf1's
        # 4 queued dispatches against a gate of 1 means 4x the base hint.
        assert (
            master.shed_submissions["wf2"]
            == cfg.admission_retry_after * 4 / cfg.admission_max_pending
        )
        assert "wf2" in master.rejected
        assert master.liveness_stats()["shed_submissions"] == 1

        # Drain the backlog, then the retried submission is admitted.
        with WorkerDaemon(broker, config=cfg, name="w0"):
            assert master.wait("wf1", timeout=20.0)
            assert _poll(lambda: broker.depth(TOPIC_DISPATCH) == 0)
            submit_workflow(broker, make_parallel("wf2", 4, job))
            assert master.wait("wf2", timeout=20.0)
    assert len(runs) == 8
