"""Tests for the storage substrate: disks, write-back cache, shared FS."""

import pytest

from repro.cloud import ClusterSpec, SimCluster, get_instance_type
from repro.sim import FairShareLink, Simulator
from repro.storage import (
    SharedFileSystem,
    WriteBackCache,
    make_moosefs,
    make_nton_nfs,
    read_miss_ratio,
)
from repro.storage.cache import MIN_MISS_RATIO
from repro.storage.moosefs import moosefs_placement
from repro.storage.nfs import nton_placement
from repro.workflow.dag import DataFile


def make_cluster(n_nodes=2, itype="c3.8xlarge", fs="moosefs"):
    sim = Simulator()
    cluster = SimCluster(sim, ClusterSpec(itype, n_nodes, filesystem=fs))
    return sim, cluster


# ---------------------------------------------------------------------------
# Read-miss model
# ---------------------------------------------------------------------------


def test_miss_ratio_small_working_set_is_floor():
    assert read_miss_ratio(100e9, 10e9) == MIN_MISS_RATIO


def test_miss_ratio_large_working_set():
    assert read_miss_ratio(60e9, 350e9) == pytest.approx(1 - 60 / 350)


def test_miss_ratio_zero_active():
    assert read_miss_ratio(10e9, 0.0) == MIN_MISS_RATIO


def test_miss_ratio_never_above_one():
    assert read_miss_ratio(0.0, 1e9) == 1.0


def test_miss_ratio_validation():
    with pytest.raises(ValueError):
        read_miss_ratio(-1.0, 1.0)


# ---------------------------------------------------------------------------
# WriteBackCache
# ---------------------------------------------------------------------------


def test_writeback_absorbs_within_capacity():
    sim = Simulator()
    slow = FairShareLink(sim, capacity=1.0)  # 1 B/s: flushing takes ages
    cache = WriteBackCache(sim, capacity_bytes=1000.0)
    times = []

    def writer():
        yield cache.write(500.0, (slow,))
        times.append(sim.now)

    sim.process(writer())
    sim.run(until=10.0)
    # Write completed immediately even though the device is glacial.
    assert times == [0.0]
    assert cache.dirty > 0


def test_writeback_throttles_beyond_capacity():
    sim = Simulator()
    link = FairShareLink(sim, capacity=100.0)
    cache = WriteBackCache(sim, capacity_bytes=100.0, chunk_bytes=50.0)
    times = []

    def writer(n):
        yield cache.write(n, (link,))
        times.append(sim.now)

    sim.process(writer(100.0))
    sim.process(writer(100.0))  # must wait for flusher to free space
    sim.run()
    assert times[0] == 0.0
    assert times[1] > 0.0


def test_writeback_drained_event():
    sim = Simulator()
    link = FairShareLink(sim, capacity=100.0)
    cache = WriteBackCache(sim, capacity_bytes=1e6)
    done = []

    def writer():
        yield cache.write(200.0, (link,))
        drained = cache.drained()
        yield drained
        done.append(sim.now)

    sim.process(writer())
    sim.run()
    assert done == [pytest.approx(2.0)]
    assert cache.dirty == pytest.approx(0.0)


def test_writeback_oversized_entry_does_not_deadlock():
    sim = Simulator()
    link = FairShareLink(sim, capacity=100.0)
    cache = WriteBackCache(sim, capacity_bytes=50.0, chunk_bytes=25.0)
    times = []

    def writer():
        yield cache.write(200.0, (link,))  # 4x the cache size
        times.append(sim.now)

    sim.process(writer())
    sim.run()
    assert times and times[0] >= 0.0
    assert cache.dirty == pytest.approx(0.0)


def test_writeback_zero_write_immediate():
    sim = Simulator()
    link = FairShareLink(sim, capacity=100.0)
    cache = WriteBackCache(sim, capacity_bytes=100.0)
    assert cache.write(0.0, (link,)).triggered


def test_writeback_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        WriteBackCache(sim, capacity_bytes=0.0)
    cache = WriteBackCache(sim, capacity_bytes=10.0)
    with pytest.raises(ValueError):
        cache.write(-1.0, ())


# ---------------------------------------------------------------------------
# Placement policies
# ---------------------------------------------------------------------------


def test_nton_placement_groups_by_workflow_folder():
    a1 = nton_placement("wf-a/file1.fits", 8)
    a2 = nton_placement("wf-a/file2.fits", 8)
    assert a1 == a2  # same folder -> same export


def test_moosefs_placement_spreads_files():
    homes = {moosefs_placement(f"wf/file{i}.fits", 8) for i in range(100)}
    assert len(homes) == 8  # uniform-ish spread over all chunk servers


def test_placement_deterministic():
    assert moosefs_placement("x/y", 5) == moosefs_placement("x/y", 5)


# ---------------------------------------------------------------------------
# SharedFileSystem routing
# ---------------------------------------------------------------------------


def test_local_read_uses_local_disk_only():
    sim, cluster = make_cluster(n_nodes=1, fs="local")
    node = cluster.nodes[0]
    f = DataFile("wf/x.dat", 1e9)
    cluster.fs.active_bytes = 1e15  # force full miss ratio
    done = []

    def reader():
        yield cluster.fs.read(node, [f])
        done.append(sim.now)

    sim.process(reader())
    sim.run()
    # 1 GB at c3 random-read 400 MB/s -> 2.5 s
    assert done == [pytest.approx(2.5, rel=1e-3)]
    assert cluster.fs.remote_reads == 0


def test_remote_read_crosses_network():
    sim, cluster = make_cluster(n_nodes=2, fs="moosefs")
    fs = cluster.fs
    fs.active_bytes = 1e15
    f = DataFile("wf/x.dat", 1e9)
    home = fs.home_of(f)
    reader_node = cluster.nodes[1 - home.index]
    done = []

    def reader():
        yield fs.read(reader_node, [f])
        done.append(sim.now)

    sim.process(reader())
    sim.run()
    assert fs.remote_reads == 1
    # Bottleneck is the home's 400 MB/s disk read (NIC is 1250 MB/s).
    assert done == [pytest.approx(2.5, rel=1e-3)]
    assert home.nic_out.bytes_total > 0 or home.nic_out.log.integrate(sim.now) > 0


def test_recently_written_file_reads_from_cache():
    """Producer->consumer reads are (nearly) free: a file written moments
    ago is still resident in the page cache."""
    sim, cluster = make_cluster(n_nodes=1, fs="local")
    node = cluster.nodes[0]
    fs = cluster.fs
    f = DataFile("wf/x.dat", 1e9)
    done = []

    def producer_consumer():
        yield fs.write(node, [f])
        yield fs.read(node, [f])
        done.append(sim.now)

    sim.process(producer_consumer())
    sim.run(until=0.5)
    # Write is absorbed by the write-back cache and the read hits the page
    # cache (stack distance 0), so both complete immediately.
    assert done == [0.0]
    assert fs.bytes_read == pytest.approx(0.0)


def test_read_miss_grows_with_stack_distance():
    """The linear-decay LRU model: the more bytes written since a file
    was last touched, the more of it must come from the device."""
    sim, cluster = make_cluster(n_nodes=1, fs="local")
    node = cluster.nodes[0]
    fs = cluster.fs
    f = DataFile("wf/x.dat", 1e9)
    fs.write_clock = 0.0
    fs._last_touch[("", f.name)] = 0.0
    fs.write_clock = 0.5 * node.page_cache_bytes  # half the cache since
    assert fs._read_bytes_of(node, f, "") == pytest.approx(0.5e9)
    # Touch reset the distance: an immediate re-read is free.
    assert fs._read_bytes_of(node, f, "") == pytest.approx(0.0)
    # Beyond the cache size: full miss.
    fs.write_clock += 2 * node.page_cache_bytes
    assert fs._read_bytes_of(node, f, "") == pytest.approx(1e9)


def test_first_touch_is_full_miss():
    sim, cluster = make_cluster(n_nodes=1, fs="local")
    node = cluster.nodes[0]
    fs = cluster.fs
    f = DataFile("wf/new.dat", 1e6)
    assert fs._read_bytes_of(node, f, "w") == pytest.approx(1e6)


def test_ratio_cache_model_fallback():
    from repro.sim import Simulator
    from repro.cloud import SimCluster, ClusterSpec

    sim = Simulator()
    cluster = SimCluster(sim, ClusterSpec("c3.8xlarge", 1, filesystem="local"))
    fs = cluster.fs
    fs.precise_cache = False
    node = cluster.nodes[0]
    fs.active_bytes = node.page_cache_bytes  # fully cacheable -> floor miss
    f = DataFile("wf/x.dat", 1e9)
    assert fs._read_bytes_of(node, f, "") == pytest.approx(1e9 * MIN_MISS_RATIO)


def test_write_updates_active_bytes_and_routes_to_cache():
    sim, cluster = make_cluster(n_nodes=2, fs="moosefs")
    fs = cluster.fs
    node = cluster.nodes[0]
    files = [DataFile(f"wf/out{i}.dat", 1e6) for i in range(10)]
    done = []

    def writer():
        yield fs.write(node, files)
        done.append(sim.now)

    sim.process(writer())
    sim.run()
    assert done == [0.0]  # absorbed by write-back cache instantly
    assert fs.active_bytes == pytest.approx(10e6)
    assert fs.bytes_written == pytest.approx(10e6)


def test_stage_inputs_counts_every_member():
    from repro.generators import montage_workflow

    sim, cluster = make_cluster(n_nodes=1, fs="local")
    wf = montage_workflow(degree=0.5)
    cluster.fs.stage_inputs([wf, wf.relabel("copy")])
    # Every ensemble member owns its own physical input files (the paper's
    # 200-workflow ensemble has 288,800 input files), so staging counts
    # each member even when relabelled copies share DataFile objects.
    assert cluster.fs.active_bytes == pytest.approx(2 * wf.bytes_by_kind()["input"])


def test_nton_fs_concentrates_workflow_io():
    sim, cluster = make_cluster(n_nodes=4, fs="nfs-nton")
    fs = cluster.fs
    files = [DataFile(f"wf-a/f{i}.dat", 1.0) for i in range(50)]
    homes = {fs.home_of(f).index for f in files}
    assert len(homes) == 1  # hot spot: all on the workflow's export


def test_moosefs_spreads_workflow_io():
    sim, cluster = make_cluster(n_nodes=4, fs="moosefs")
    fs = cluster.fs
    files = [DataFile(f"wf-a/f{i}.dat", 1.0) for i in range(50)]
    homes = {fs.home_of(f).index for f in files}
    assert len(homes) == 4


def test_fs_requires_nodes():
    sim = Simulator()
    with pytest.raises(ValueError):
        SharedFileSystem(sim, [])
