"""Unit tests for the workflow DAG model and validation."""

import pytest

from repro.workflow import DataFile, Job, ValidationError, Workflow, validate_workflow
from repro.workflow.validation import find_problems


def diamond() -> Workflow:
    """a -> (b, c) -> d with data files along the edges."""
    wf = Workflow("diamond")
    fa = DataFile("a.out", 100.0)
    fb = DataFile("b.out", 100.0)
    fc = DataFile("c.out", 100.0)
    wf.new_job("a", "src", runtime=1.0, inputs=[DataFile("in", 10.0, "input")], outputs=[fa])
    wf.new_job("b", "mid", runtime=2.0, inputs=[fa], outputs=[fb])
    wf.new_job("c", "mid", runtime=3.0, inputs=[fa], outputs=[fc])
    wf.new_job("d", "sink", runtime=1.0, inputs=[fb, fc],
               outputs=[DataFile("final", 50.0, "output")])
    wf.add_dependency("a", "b")
    wf.add_dependency("a", "c")
    wf.add_dependency("b", "d")
    wf.add_dependency("c", "d")
    return wf


def test_roots_and_leaves():
    wf = diamond()
    assert [j.id for j in wf.roots()] == ["a"]
    assert [j.id for j in wf.leaves()] == ["d"]


def test_topological_order_respects_dependencies():
    wf = diamond()
    order = [j.id for j in wf.topological_order()]
    assert order.index("a") < order.index("b") < order.index("d")
    assert order.index("a") < order.index("c") < order.index("d")


def test_cycle_detection():
    wf = diamond()
    wf.add_dependency("d", "a")
    with pytest.raises(ValueError, match="cycle"):
        wf.topological_order()


def test_duplicate_job_id_rejected():
    wf = Workflow("w")
    wf.new_job("x", "t")
    with pytest.raises(ValueError, match="duplicate"):
        wf.new_job("x", "t")


def test_self_dependency_rejected():
    wf = Workflow("w")
    wf.new_job("x", "t")
    with pytest.raises(ValueError, match="self-dependency"):
        wf.add_dependency("x", "x")


def test_unknown_dependency_endpoints_rejected():
    wf = Workflow("w")
    wf.new_job("x", "t")
    with pytest.raises(KeyError):
        wf.add_dependency("x", "ghost")
    with pytest.raises(KeyError):
        wf.add_dependency("ghost", "x")


def test_repeated_dependency_is_idempotent():
    wf = Workflow("w")
    wf.new_job("a", "t")
    wf.new_job("b", "t")
    wf.add_dependency("a", "b")
    wf.add_dependency("a", "b")
    assert wf.job("a").children == ["b"]
    assert wf.job("b").parents == ["a"]


def test_edges_and_counts():
    wf = diamond()
    assert wf.n_edges() == 4
    assert set(wf.edges()) == {("a", "b"), ("a", "c"), ("b", "d"), ("c", "d")}
    assert len(wf) == 4
    assert "a" in wf and "z" not in wf


def test_total_runtime_and_bytes():
    wf = diamond()
    assert wf.total_runtime() == pytest.approx(7.0)
    by_kind = wf.bytes_by_kind()
    assert by_kind["input"] == pytest.approx(10.0)
    assert by_kind["intermediate"] == pytest.approx(300.0)
    assert by_kind["output"] == pytest.approx(50.0)


def test_count_by_type():
    wf = diamond()
    assert wf.count_by_type() == {"src": 1, "mid": 2, "sink": 1}


def test_relabel_shares_structure():
    wf = diamond()
    clone = wf.relabel("copy")
    assert clone.name == "copy"
    assert clone.jobs is wf.jobs


def test_job_validation():
    with pytest.raises(ValueError):
        Job("j", "t", runtime=-1.0)
    with pytest.raises(ValueError):
        Job("j", "t", threads=0)
    with pytest.raises(ValueError):
        DataFile("f", -5.0)
    with pytest.raises(ValueError):
        DataFile("f", 5.0, kind="bogus")


def test_job_byte_properties():
    job = Job(
        "j",
        "t",
        inputs=[DataFile("a", 10.0, "input"), DataFile("b", 20.0, "input")],
        outputs=[DataFile("c", 5.0)],
    )
    assert job.input_bytes == pytest.approx(30.0)
    assert job.output_bytes == pytest.approx(5.0)


# ---------------------------------------------------------------------------
# Validation
# ---------------------------------------------------------------------------


def test_validate_accepts_diamond():
    assert validate_workflow(diamond()) is not None


def test_validate_rejects_empty():
    with pytest.raises(ValidationError, match="no jobs"):
        validate_workflow(Workflow("empty"))


def test_validate_detects_cycle():
    wf = diamond()
    wf.add_dependency("d", "a")
    problems = find_problems(wf)
    assert any("cycle" in p for p in problems)


def test_validate_detects_asymmetric_links():
    wf = Workflow("w")
    wf.new_job("a", "t")
    wf.new_job("b", "t")
    wf.job("b").parents.append("a")  # bypass add_dependency
    problems = find_problems(wf)
    assert any("not mirrored" in p for p in problems)


def test_validate_detects_unknown_parent():
    wf = Workflow("w")
    wf.new_job("a", "t")
    wf.job("a").parents.append("ghost")
    problems = find_problems(wf)
    assert any("unknown parent" in p for p in problems)


def test_validate_detects_double_producer():
    wf = Workflow("w")
    shared = DataFile("shared.out", 1.0)
    wf.new_job("a", "t", outputs=[shared])
    wf.new_job("b", "t", outputs=[shared])
    problems = find_problems(wf)
    assert any("produced by both" in p for p in problems)


def test_validate_detects_orphan_intermediate_input():
    wf = Workflow("w")
    wf.new_job("a", "t", inputs=[DataFile("nowhere.dat", 1.0, "intermediate")])
    problems = find_problems(wf)
    assert any("no producer" in p for p in problems)


def test_validation_error_reports_workflow_name():
    with pytest.raises(ValidationError) as err:
        validate_workflow(Workflow("broken"))
    assert err.value.workflow_name == "broken"
    assert err.value.problems
