"""Tests for the Epigenomics and SIPHT generators, plus cross-family
engine runs and homogeneity contrasts."""

import pytest

from repro.cloud import ClusterSpec
from repro.engines import PullEngine
from repro.generators import (
    epigenomics_workflow,
    montage_workflow,
    sipht_workflow,
)
from repro.workflow import Ensemble, validate_workflow
from repro.workflow.analysis import critical_path, topological_levels
from repro.workflow.traces import homogeneity_index

# ---------------------------------------------------------------------------
# Epigenomics
# ---------------------------------------------------------------------------


def test_epigenomics_valid_and_counted():
    wf = epigenomics_workflow(lanes=3, chunks=4)
    validate_workflow(wf)
    counts = wf.count_by_type()
    assert counts["fastqSplit"] == 3
    assert counts["map"] == 12
    assert counts["mapMerge"] == 3
    assert counts["mapMergeGlobal"] == 1
    assert counts["pileup"] == 1
    # 3 splits + 3*4*4 chain jobs + 3 merges + 3 tail jobs
    assert len(wf) == 3 + 48 + 3 + 3


def test_epigenomics_chains_are_deep():
    """Each chunk is a 4-step chain: the DAG has >= 7 levels."""
    wf = epigenomics_workflow(lanes=2, chunks=2)
    levels = topological_levels(wf)
    assert max(levels.values()) >= 7


def test_epigenomics_critical_path_is_chain_plus_tail():
    wf = epigenomics_workflow(lanes=1, chunks=1)
    length, path = critical_path(wf)
    assert path[0] == "fastqSplit_00"
    assert path[-1] == "pileup"
    assert length == pytest.approx(wf.total_runtime())  # single chain


def test_epigenomics_validation():
    with pytest.raises(ValueError):
        epigenomics_workflow(lanes=0)
    with pytest.raises(ValueError):
        epigenomics_workflow(lanes=1, chunks=1, jitter=-1.0)


def test_epigenomics_runs_on_pull_engine():
    wf = epigenomics_workflow(lanes=2, chunks=3)
    result = PullEngine(ClusterSpec("c3.8xlarge", 1, filesystem="local")).run(
        Ensemble([wf])
    )
    assert result.jobs_executed == len(wf)


# ---------------------------------------------------------------------------
# SIPHT
# ---------------------------------------------------------------------------


def test_sipht_valid_and_counted():
    wf = sipht_workflow(patsers=10)
    validate_workflow(wf)
    counts = wf.count_by_type()
    assert counts["Patser"] == 10
    assert counts["SRNA"] == 1
    assert counts["Blast"] == 1
    assert counts["SRNAAnnotate"] == 1
    assert len(wf) == 10 + 1 + 4 + 1 + 1 + 4 + 1


def test_sipht_srna_joins_all_bands():
    wf = sipht_workflow(patsers=6)
    srna = wf.job("SRNA")
    assert "PatserConcat" in srna.parents
    for analysis in ("TransTerm", "FindTerm", "RNAMotif", "Blast"):
        assert analysis in srna.parents


def test_sipht_validation():
    with pytest.raises(ValueError):
        sipht_workflow(patsers=0)


def test_sipht_runs_on_pull_engine():
    wf = sipht_workflow(patsers=12)
    result = PullEngine(ClusterSpec("c3.8xlarge", 1, filesystem="local")).run(
        Ensemble([wf])
    )
    assert result.jobs_executed == len(wf)


# ---------------------------------------------------------------------------
# Homogeneity contrast (paper §I premise, measured)
# ---------------------------------------------------------------------------


def test_montage_more_homogeneous_than_sipht():
    """Montage's work lives in huge near-identical families; SIPHT's
    lives in a handful of heterogeneous analysis codes — exactly the
    contrast that decides whether pulling or scheduling fits."""
    montage = montage_workflow(degree=2.0)
    sipht = sipht_workflow(patsers=24)
    assert homogeneity_index(montage) > homogeneity_index(sipht)
    assert homogeneity_index(sipht) < 0.4


def test_deterministic_generators():
    a = epigenomics_workflow(lanes=2, chunks=2)
    b = epigenomics_workflow(lanes=2, chunks=2)
    assert [j.runtime for j in a] == [j.runtime for j in b]
    c = sipht_workflow(patsers=5, jitter=0.2, seed=3)
    d = sipht_workflow(patsers=5, jitter=0.2, seed=3)
    assert [j.runtime for j in c] == [j.runtime for j in d]
