"""Crash consistency: write-ahead journal, validated replay, and the
threaded master's checkpoint/restore.

The core guarantee under test (docs/FAULTS.md): a journaled run killed
at *any* journal offset and resumed produces an ``EngineResult``
byte-identical to the uninterrupted run.
"""

import json
import time

import pytest

import repro.analysis.sanitizer as sanitizer
from repro.cloud import ClusterSpec
from repro.dewe import DeweConfig, MasterDaemon, WorkerDaemon, submit_workflow
from repro.engines.base import RunConfig
from repro.engines.pull import PullEngine
from repro.faults.models import TransientFaultModel
from repro.faults.retry import RetryPolicy
from repro.generators import montage_workflow
from repro.mq import Broker
from repro.recovery import (
    Journal,
    JournalError,
    MasterCrash,
    MasterCrashModel,
    ReplayDivergence,
    resume_until_complete,
    state_digest,
)
from repro.workflow import Ensemble, Workflow


# -- journal unit tests ----------------------------------------------------


def test_append_assigns_sequence_and_line_format():
    journal = Journal()
    rec = journal.append(1.25, "dispatch", "wf", "job", 1, "node=0")
    assert rec.seq == 1
    assert rec.line() == "00000001 t=1.250000000 dispatch wf/job#1 node=0"
    journal.append(2.0, "ack-complete", "wf", "job", 1)
    assert journal.seq == 2
    assert len(journal) == 2
    assert journal.text().count("\n") == 1


def test_checkpoint_compacts_the_log():
    journal = Journal(checkpoint_every=3)
    journal.snapshot_provider = lambda: {"wf": {"n": journal.seq}}
    for i in range(7):
        journal.append(float(i), "dispatch", "wf", f"j{i}", 1)
    # Checkpoints at seq 3 and 6; only the tail survives in `records`.
    assert [seq for seq, _t in journal.checkpoint_history] == [3, 6]
    assert journal.checkpoint is not None and journal.checkpoint.seq == 6
    assert journal.n_records == 1
    assert journal.seq == 7
    assert journal.checkpoint.digest == state_digest({"wf": {"n": 6}})


def test_checkpoint_without_provider_raises():
    with pytest.raises(JournalError, match="snapshot_provider"):
        Journal().take_checkpoint(0.0)


def test_crash_after_fires_once_and_sticks():
    journal = Journal(crash_after=2)
    fired = []
    journal.on_crash = lambda: fired.append(True)
    journal.append(0.0, "submit", "wf")
    journal.append(0.1, "dispatch", "wf", "a", 1)
    with pytest.raises(MasterCrash):
        journal.append(0.2, "dispatch", "wf", "b", 1)
    # The crashing append is NOT recorded (write-ahead died first) and
    # a dead master writes nothing afterwards.
    assert journal.seq == 2
    assert journal.crashed and fired == [True]
    with pytest.raises(MasterCrash):
        journal.append(0.3, "ack-running", "wf", "a", 1)


def test_resume_requires_a_crash():
    with pytest.raises(JournalError, match="did not crash"):
        Journal().resume()


def test_validated_replay_accepts_identical_records():
    journal = Journal(crash_after=2)
    journal.append(0.0, "submit", "wf")
    journal.append(0.1, "dispatch", "wf", "a", 1)
    with pytest.raises(MasterCrash):
        journal.append(0.2, "dispatch", "wf", "b", 1)
    journal.resume()
    assert journal.resumes == 1 and journal.crash_after is None
    # Replay the identical prefix, then go live.
    journal.append(0.0, "submit", "wf")
    assert journal.replaying
    journal.append(0.1, "dispatch", "wf", "a", 1)
    assert not journal.replaying
    journal.append(0.2, "dispatch", "wf", "b", 1)
    assert journal.seq == 3


def test_validated_replay_rejects_divergence():
    journal = Journal(crash_after=1)
    journal.append(0.0, "submit", "wf")
    with pytest.raises(MasterCrash):
        journal.append(0.1, "dispatch", "wf", "a", 1)
    journal.resume()
    with sanitizer.enabled(strict=False) as san:
        with pytest.raises(ReplayDivergence, match="seq 1"):
            journal.append(0.5, "submit", "wf")  # wrong time
        assert any(v.check == "journal-replay" for v in san.violations)


def test_replay_validates_checkpoint_digest():
    journal = Journal(checkpoint_every=2, crash_after=3)
    journal.snapshot_provider = lambda: {"wf": "state-a"}
    journal.append(0.0, "submit", "wf")
    journal.append(0.1, "dispatch", "wf", "a", 1)  # checkpoint at seq 2
    journal.append(0.2, "ack-running", "wf", "a", 1)
    with pytest.raises(MasterCrash):
        journal.append(0.3, "ack-complete", "wf", "a", 1)
    journal.resume()
    # Resumed master state differs at the checkpoint offset: caught.
    journal.snapshot_provider = lambda: {"wf": "state-B"}
    journal.append(0.0, "submit", "wf")
    with sanitizer.enabled(strict=False) as san:
        with pytest.raises(ReplayDivergence, match="digest"):
            journal.append(0.1, "dispatch", "wf", "a", 1)
        assert any(v.check == "checkpoint-digest" for v in san.violations)


def test_to_jsonl_round_trips_records(tmp_path):
    journal = Journal(checkpoint_every=2)
    journal.snapshot_provider = lambda: {"wf": {"seq": journal.seq}}
    for i in range(5):
        journal.append(float(i), "dispatch", "wf", f"j{i}", 1)
    path = tmp_path / "journal.jsonl"
    journal.to_jsonl(path)
    lines = [json.loads(line) for line in path.read_text().splitlines()]
    assert "checkpoint" in lines[0]
    assert lines[0]["checkpoint"]["seq"] == 4
    assert [rec["seq"] for rec in lines[1:]] == [5]


# -- engine crash/resume ---------------------------------------------------


SPEC = ClusterSpec("m3.2xlarge", 2)
CONFIG = RunConfig(default_timeout=10.0, timeout_check_interval=0.5,
                   record_jobs=False)


def _ensemble():
    return Ensemble.replicated(montage_workflow(degree=0.3), 1)


def _engine(journal=None, p_fail=0.0):
    transient = (
        TransientFaultModel(p_fail=p_fail, seed=7) if p_fail > 0 else None
    )
    return PullEngine(
        SPEC,
        config=CONFIG,
        retry=RetryPolicy(max_attempts=4),
        transient=transient,
        journal=journal,
    )


def _fingerprint(result):
    return (
        result.makespan,
        result.workflow_spans,
        result.jobs_executed,
        result.resubmissions,
        result.job_counts,
        list(result.dead_letters),
        result.journal.text() if result.journal else "",
    )


def test_uninterrupted_journal_records_all_transitions():
    journal = Journal(checkpoint_every=25)
    result = _engine(journal).run(_ensemble())
    assert result.journal is journal
    kinds = {rec.kind for rec in journal.records}
    # The tail always ends with completions; the full kind coverage is
    # asserted via seq (one record per transition) and the text.
    assert journal.seq > 3 * result.jobs_executed  # dispatch+running+complete
    assert journal.checkpoint_history
    assert "ack-complete" in kinds


def test_crash_and_resume_is_byte_identical():
    baseline = _engine(Journal(checkpoint_every=25)).run(_ensemble())
    journal = Journal(checkpoint_every=25, crash_after=40)
    resumed = resume_until_complete(
        lambda j: _engine(j), _ensemble, journal
    )
    assert journal.resumes == 1
    assert _fingerprint(resumed) == _fingerprint(baseline)


def test_crash_during_replay_free_run_raises_master_crash():
    journal = Journal(crash_after=10)
    with pytest.raises(MasterCrash):
        _engine(journal).run(_ensemble())
    assert journal.crashed and journal.seq == 10


def test_resume_budget_exhaustion_raises():
    # A journal whose crash budget re-arms every attempt can never finish.
    class Hostile(Journal):
        def resume(self):
            super().resume()
            self.crash_after = 5
            return self

    with pytest.raises(JournalError, match="did not complete"):
        resume_until_complete(
            lambda j: _engine(j), _ensemble, Hostile(crash_after=5),
            max_resumes=2,
        )


def test_crash_matrix_every_offset_resumes_identically():
    """Satellite (c): kill the master at a sweep of journal offsets —
    before the first checkpoint, on compaction boundaries, deep in the
    run — and require byte-identical recovery every time.  The sweep is
    derived from the uninterrupted journal so it covers the whole run
    regardless of workload size."""
    baseline = _engine(Journal(checkpoint_every=25), p_fail=0.2).run(
        _ensemble()
    )
    assert baseline.resubmissions > 0  # retries are genuinely in the log
    total = baseline.journal.seq
    expected = _fingerprint(baseline)
    expected_trace = [e.line() for e in baseline.fault_events]
    step = max(1, total // 6)
    offsets = list(range(1, total, step)) + [25, total - 1]
    for offset in sorted(set(offsets)):
        journal = Journal(checkpoint_every=25, crash_after=offset)
        resumed = resume_until_complete(
            lambda j: _engine(j, p_fail=0.2), _ensemble, journal
        )
        assert journal.resumes == 1, f"offset {offset}"
        assert _fingerprint(resumed) == expected, f"offset {offset}"
        assert [
            e.line() for e in resumed.fault_events
        ] == expected_trace, f"offset {offset}"


def test_double_crash_same_run_resumes_identically():
    baseline = _engine(Journal(checkpoint_every=20)).run(_ensemble())

    class TwoCrashes(Journal):
        def resume(self):
            super().resume()
            if self.resumes == 1:  # crash again, deeper into the run
                self.crash_after = 50
            return self

    journal = TwoCrashes(checkpoint_every=20, crash_after=30)
    resumed = resume_until_complete(lambda j: _engine(j), _ensemble, journal)
    assert journal.resumes == 2
    assert _fingerprint(resumed)[:-1] == _fingerprint(baseline)[:-1]
    assert journal.text() == baseline.journal.text()


# -- threaded master checkpoint/restore ------------------------------------


FAST = DeweConfig(
    default_timeout=1.0,
    master_poll_interval=0.002,
    worker_poll_interval=0.005,
    max_concurrent_jobs=8,
)


def _chain(n=4, pause=None):
    """a0 -> a1 -> ... with an optional blocking action on one job."""
    wf = Workflow("chain")
    for i in range(n):
        action = pause if pause is not None and i == n // 2 else None
        wf.new_job(f"a{i}", "t", runtime=0.0, action=action)
        if i:
            wf.add_dependency(f"a{i - 1}", f"a{i}")
    return wf


def test_master_checkpoint_and_restore_preserves_completions():
    broker = Broker()
    import threading

    gate = threading.Event()
    executed = []

    def blocker():
        executed.append("blocked-job")
        gate.wait(timeout=5.0)

    wf = _chain(4, pause=blocker)
    model = MasterCrashModel(checkpoint_interval=0.01)
    master = MasterDaemon(broker, FAST).start()
    model.attach(master)
    worker = WorkerDaemon(broker, config=FAST).start()
    try:
        submit_workflow(broker, wf)
        # Wait until the blocking job is reached, then let checkpoints
        # observe the two completed predecessors.
        for _ in range(500):
            if "blocked-job" in executed:
                break
            time.sleep(0.01)
        time.sleep(0.05)
        checkpoint = model.crash()
        assert model.crashes == 1
        completed = checkpoint.completed_jobs().get("chain", [])
        assert "a0" in completed and "a1" in completed
        gate.set()
        master = model.restart(broker)
        assert master.wait("chain", timeout=10.0)
    finally:
        model.detach()
        worker.stop()
        master.stop()
    state = master.states["chain"]
    assert state.is_complete
    # Restore kept the pre-crash completions (no from-scratch re-run).
    assert state.n_completed == 4


def test_from_checkpoint_requeues_in_flight_jobs():
    broker = Broker()
    wf = _chain(3)
    state_master = MasterDaemon(broker, FAST)
    # Build a checkpoint by hand: a0 completed, a1 in flight (no worker
    # ack will ever arrive for its old delivery).
    from repro.dewe.state import WorkflowState

    state = WorkflowState(wf, 1.0, retry=RetryPolicy(max_attempts=4))
    for job_id in state.initial_ready():
        pass
    state.mark_dispatched("a0", 0.0)
    for child in state.on_completed("a0", 1):
        state.mark_dispatched(child, 0.0)
    state_master.states["chain"] = state
    state_master._submit_times["chain"] = time.monotonic()
    checkpoint = state_master.checkpoint()

    restored = MasterDaemon.from_checkpoint(broker, checkpoint, config=FAST)
    worker = WorkerDaemon(broker, config=FAST).start()
    try:
        restored.start()
        assert restored.wait("chain", timeout=10.0)
    finally:
        worker.stop()
        restored.stop()
    new_state = restored.states["chain"]
    assert new_state.is_complete
    # a1 was re-dispatched with a bumped attempt; a0 stayed completed.
    assert new_state.resubmissions >= 1
    assert new_state.attempt["a1"] >= 2


def test_state_snapshot_restore_round_trip():
    from repro.dewe.state import WorkflowState

    wf = _chain(3)
    state = WorkflowState(wf, 2.5, retry=RetryPolicy(max_attempts=4))
    state.initial_ready()
    state.mark_dispatched("a0", 1.0)
    state.on_running("a0", 1, 1.1)
    snapshot = state.snapshot()
    clone = WorkflowState.restore(
        wf, snapshot, default_timeout=2.5, retry=RetryPolicy(max_attempts=4)
    )
    assert clone.snapshot() == snapshot
    assert clone.status == state.status
    assert clone.attempt == state.attempt
    assert state_digest({"chain": snapshot}) == state_digest(
        {"chain": clone.snapshot()}
    )
