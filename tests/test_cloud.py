"""Tests for the cloud substrate: catalogue, pricing, clusters, EC2 model."""

import pytest

from repro.cloud import (
    INSTANCE_TYPES,
    BillingModel,
    ClusterSpec,
    SimCluster,
    SimulatedEC2,
    cluster_cost,
    get_instance_type,
    price_per_workflow,
)
from repro.cloud.pricing import billed_hours
from repro.sim import Simulator

# ---------------------------------------------------------------------------
# Instance catalogue (Tables I & II)
# ---------------------------------------------------------------------------


def test_table1_specs_transcribed():
    c3 = get_instance_type("c3.8xlarge")
    r3 = get_instance_type("r3.8xlarge")
    i2 = get_instance_type("i2.8xlarge")
    for t in (c3, r3, i2):
        assert t.vcpus == 32
        assert t.network_gbps == 10.0
    assert c3.memory_gb == 60.0 and c3.storage == (2, 320) and c3.price_per_hour == 1.68
    assert r3.memory_gb == 244.0 and r3.storage == (2, 320) and r3.price_per_hour == 2.80
    assert i2.memory_gb == 244.0 and i2.storage == (8, 800) and i2.price_per_hour == 6.82


def test_table2_disk_profiles_transcribed():
    disk = get_instance_type("i2.8xlarge").disk
    assert disk.seq_read == 2200e6
    assert disk.seq_write == 3800e6
    assert disk.rand_read == 1800e6
    assert disk.rand_write == 3600e6


def test_disk_io_ordering_matches_paper():
    """i2 > r3 > c3 on every channel (drives Fig 4c's stage-3 ordering)."""
    c3, r3, i2 = (get_instance_type(n).disk for n in
                  ("c3.8xlarge", "r3.8xlarge", "i2.8xlarge"))
    for field in ("seq_read", "seq_write", "rand_read", "rand_write"):
        assert getattr(i2, field) > getattr(r3, field) > getattr(c3, field)


def test_storage_and_network_helpers():
    i2 = get_instance_type("i2.8xlarge")
    assert i2.storage_gb == 6400
    assert i2.network_bytes_per_s == pytest.approx(1.25e9)
    assert i2.memory_bytes == pytest.approx(244e9)


def test_unknown_type_lists_known():
    with pytest.raises(KeyError, match="c3.8xlarge"):
        get_instance_type("z9.mega")


def test_m3_present_for_fig2():
    m3 = get_instance_type("m3.2xlarge")
    assert m3.vcpus == 8


# ---------------------------------------------------------------------------
# Pricing
# ---------------------------------------------------------------------------


def test_billed_hours_rounds_up_per_hour():
    assert billed_hours(1.0) == 1.0
    assert billed_hours(3600.0) == 1.0
    assert billed_hours(3601.0) == 2.0
    assert billed_hours(0.0) == 0.0


def test_billed_hours_per_minute():
    assert billed_hours(90.0, BillingModel.PER_MINUTE) == pytest.approx(2 / 60)
    assert billed_hours(3600.0, BillingModel.PER_MINUTE) == pytest.approx(1.0)


def test_billed_hours_per_second():
    assert billed_hours(1800.0, BillingModel.PER_SECOND) == pytest.approx(0.5)


def test_cluster_cost_table3_prices():
    """Table III: 40 c3 = 67.2, 25 r3 = 70.0, 23 i2 = 156.7(86), 10 i2 = 68.2 USD/hr."""
    assert cluster_cost(get_instance_type("c3.8xlarge"), 40, 3600) == pytest.approx(67.2)
    assert cluster_cost(get_instance_type("r3.8xlarge"), 25, 3600) == pytest.approx(70.0)
    assert cluster_cost(get_instance_type("i2.8xlarge"), 23, 3600) == pytest.approx(156.86)
    assert cluster_cost(get_instance_type("i2.8xlarge"), 10, 3600) == pytest.approx(68.2)


def test_price_per_workflow_decreases_with_workload():
    itype = get_instance_type("c3.8xlarge")
    p50 = price_per_workflow(itype, 40, 3000, 50)
    p200 = price_per_workflow(itype, 40, 3000, 200)
    assert p200 < p50


def test_pricing_validation():
    itype = get_instance_type("c3.8xlarge")
    with pytest.raises(ValueError):
        billed_hours(-1.0)
    with pytest.raises(ValueError):
        cluster_cost(itype, -1, 100)
    with pytest.raises(ValueError):
        price_per_workflow(itype, 1, 100, 0)


# ---------------------------------------------------------------------------
# ClusterSpec / SimCluster
# ---------------------------------------------------------------------------


def test_cluster_spec_aggregates():
    spec = ClusterSpec("r3.8xlarge", 25)
    assert spec.total_vcpus == 800
    assert spec.total_memory_gb == pytest.approx(6100.0)
    assert spec.price_per_hour == pytest.approx(70.0)


def test_cluster_spec_validation():
    with pytest.raises(ValueError):
        ClusterSpec("c3.8xlarge", 0)
    with pytest.raises(KeyError):
        ClusterSpec("bogus", 1)
    with pytest.raises(ValueError):
        ClusterSpec("c3.8xlarge", 1, filesystem="fat32")


def test_sim_cluster_builds_nodes_and_fs():
    sim = Simulator()
    cluster = SimCluster(sim, ClusterSpec("c3.8xlarge", 3, filesystem="moosefs"))
    assert len(cluster.nodes) == 3
    assert cluster.total_cores == 96
    assert cluster.fs.name == "moosefs"


def test_sim_cluster_local_requires_single_node():
    sim = Simulator()
    with pytest.raises(ValueError):
        SimCluster(sim, ClusterSpec("c3.8xlarge", 2, filesystem="local"))


# ---------------------------------------------------------------------------
# SimulatedEC2
# ---------------------------------------------------------------------------


def test_ec2_launch_and_terminate():
    ec2 = SimulatedEC2()
    ec2.create_placement_group("pg")
    instances = ec2.launch("c3.8xlarge", count=3, placement_group="pg", now=0.0)
    assert len(instances) == 3
    assert len(ec2.running()) == 3
    assert len(ec2.describe("pg")) == 3
    ec2.terminate(instances[0].id, now=7200.0)
    assert len(ec2.running()) == 2


def test_ec2_accrued_cost_hourly_rounding():
    ec2 = SimulatedEC2()
    [inst] = ec2.launch("c3.8xlarge", now=0.0)
    ec2.terminate(inst.id, now=3601.0)
    assert ec2.accrued_cost(now=3601.0) == pytest.approx(2 * 1.68)


def test_ec2_errors():
    ec2 = SimulatedEC2()
    with pytest.raises(KeyError):
        ec2.launch("c3.8xlarge", placement_group="missing")
    with pytest.raises(KeyError):
        ec2.terminate("i-nope")
    [inst] = ec2.launch("c3.8xlarge")
    ec2.terminate(inst.id, now=10.0)
    with pytest.raises(ValueError):
        ec2.terminate(inst.id, now=20.0)
    ec2.create_placement_group("pg")
    with pytest.raises(ValueError):
        ec2.create_placement_group("pg")
