"""Repo code lint: synthetic positives/negatives per rule, plus the
tier-1 gate that keeps ``src/repro`` itself clean."""

from pathlib import Path

import repro
from repro.analysis.codelint import (
    ALL_RULES,
    RULES,
    default_rules_for,
    lint_paths,
    lint_source,
)


def _rules(findings):
    return [f.rule for f in findings]


# -- CL001: wall clock -----------------------------------------------------

def test_cl001_flags_wall_clock_calls():
    source = (
        "import time\n"
        "def tick():\n"
        "    return time.time() + time.perf_counter()\n"
    )
    findings = lint_source(source, rules=frozenset({"CL001"}))
    assert _rules(findings) == ["CL001", "CL001"]
    assert findings[0].line == 3


def test_cl001_flags_datetime_now():
    source = (
        "from datetime import datetime\n"
        "stamp = datetime.now()\n"
    )
    assert _rules(lint_source(source, rules=frozenset({"CL001"}))) == ["CL001"]


def test_cl001_allows_simulated_clock():
    source = "def run(sim):\n    return sim.now + sim.timeout(3.0).delay\n"
    assert lint_source(source, rules=frozenset({"CL001"})) == []


# -- CL002: nondeterministic RNG -------------------------------------------

def test_cl002_flags_global_random():
    source = "import random\nx = random.random()\ny = random.randint(0, 9)\n"
    assert _rules(lint_source(source, rules=frozenset({"CL002"}))) == [
        "CL002",
        "CL002",
    ]


def test_cl002_flags_unseeded_default_rng():
    source = "import numpy as np\nrng = np.random.default_rng()\n"
    assert _rules(lint_source(source, rules=frozenset({"CL002"}))) == ["CL002"]


def test_cl002_allows_seeded_default_rng():
    source = "import numpy as np\nrng = np.random.default_rng(42)\n"
    assert lint_source(source, rules=frozenset({"CL002"})) == []


def test_cl002_flags_legacy_numpy_global_rng():
    source = "import numpy as np\nx = np.random.rand(3)\n"
    assert _rules(lint_source(source, rules=frozenset({"CL002"}))) == ["CL002"]


# -- CL003: set iteration in decision code ---------------------------------

def test_cl003_flags_set_iteration():
    source = (
        "def pick(jobs):\n"
        "    for j in {1, 2, 3}:\n"
        "        yield j\n"
        "    return [x for x in set(jobs)]\n"
    )
    findings = lint_source(source, rules=frozenset({"CL003"}))
    assert _rules(findings) == ["CL003", "CL003"]


def test_cl003_allows_sorted_set():
    source = "def pick(jobs):\n    return [x for x in sorted(set(jobs))]\n"
    assert lint_source(source, rules=frozenset({"CL003"})) == []


# -- CL004: __slots__ integrity --------------------------------------------

def test_cl004_flags_undeclared_attribute():
    source = (
        "class Node:\n"
        "    __slots__ = ('a', 'b')\n"
        "    def __init__(self):\n"
        "        self.a = 1\n"
        "        self.c = 2\n"
    )
    findings = lint_source(source, rules=frozenset({"CL004"}))
    assert _rules(findings) == ["CL004"]
    assert "Node.c" in findings[0].message
    assert findings[0].line == 5


def test_cl004_resolves_inherited_slots():
    source = (
        "class Base:\n"
        "    __slots__ = ('a',)\n"
        "class Child(Base):\n"
        "    __slots__ = ('b',)\n"
        "    def __init__(self):\n"
        "        self.a = 1\n"
        "        self.b = 2\n"
        "        self.c = 3\n"
    )
    findings = lint_source(source, rules=frozenset({"CL004"}))
    assert _rules(findings) == ["CL004"]
    assert "Child.c" in findings[0].message


def test_cl004_skips_dictful_classes():
    source = (
        "class Loose:\n"
        "    def __init__(self):\n"
        "        self.anything = 1\n"
    )
    assert lint_source(source, rules=frozenset({"CL004"})) == []


def test_cl004_skips_unresolvable_base():
    source = (
        "from somewhere import Mixin\n"
        "class Node(Mixin):\n"
        "    __slots__ = ('a',)\n"
        "    def __init__(self):\n"
        "        self.whatever = 1\n"
    )
    assert lint_source(source, rules=frozenset({"CL004"})) == []


def test_cl004_skips_static_and_class_methods():
    source = (
        "class Node:\n"
        "    __slots__ = ('a',)\n"
        "    @staticmethod\n"
        "    def make(self):\n"
        "        self.b = 1\n"
        "    @classmethod\n"
        "    def build(cls):\n"
        "        cls.c = 2\n"
    )
    assert lint_source(source, rules=frozenset({"CL004"})) == []


# -- infrastructure --------------------------------------------------------

def test_syntax_error_is_reported_not_raised():
    findings = lint_source("def broken(:\n")
    assert _rules(findings) == ["CL000"]


def test_default_rules_scope_by_subpackage():
    assert default_rules_for("src/repro/sim/engine.py") == frozenset(
        {"CL001", "CL002", "CL003", "CL004"}
    )
    assert default_rules_for("src/repro/engines/pull.py") == frozenset(
        {"CL003", "CL004"}
    )
    assert default_rules_for("src/repro/monitor/plot.py") == frozenset({"CL004"})
    assert default_rules_for("scripts/helper.py") == frozenset({"CL004"})


def test_rule_catalogue_is_documented():
    assert set(RULES) == {
        "CL001", "CL002", "CL003", "CL004",
        "CL005", "CL006", "CL007", "CL008", "CL009",
    }
    assert ALL_RULES == frozenset(RULES)


def test_repo_is_clean():
    """Tier-1 gate: the installed ``repro`` package passes its own lint."""
    package_dir = Path(repro.__file__).parent
    findings = lint_paths([package_dir])
    assert findings == [], "\n".join(str(f) for f in findings)
