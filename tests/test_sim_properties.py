"""Property-based tests (hypothesis) for the DES kernel invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import CorePool, FairShareLink, SegmentLog, Simulator

# ---------------------------------------------------------------------------
# FairShareLink invariants
# ---------------------------------------------------------------------------


@st.composite
def transfer_plans(draw):
    n = draw(st.integers(min_value=1, max_value=12))
    sizes = draw(
        st.lists(
            st.floats(min_value=0.5, max_value=1e4, allow_nan=False),
            min_size=n,
            max_size=n,
        )
    )
    starts = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=50.0, allow_nan=False),
            min_size=n,
            max_size=n,
        )
    )
    capacity = draw(st.floats(min_value=1.0, max_value=1e3, allow_nan=False))
    return capacity, list(zip(starts, sizes))


@given(transfer_plans())
@settings(max_examples=60, deadline=None)
def test_link_work_conservation(plan):
    """Total delivered bytes equal total requested bytes."""
    capacity, transfers = plan
    sim = Simulator()
    link = FairShareLink(sim, capacity=capacity)
    finished = []

    def proc(start, size):
        yield sim.timeout(start)
        yield link.transfer(size)
        finished.append(size)

    for start, size in transfers:
        sim.process(proc(start, size))
    sim.run()
    assert len(finished) == len(transfers)
    total = sum(size for _, size in transfers)
    assert link.log.integrate(sim.now) == pytest.approx(total, rel=1e-6)


@given(transfer_plans())
@settings(max_examples=60, deadline=None)
def test_link_no_transfer_beats_dedicated_rate(plan):
    """No stream finishes faster than running alone at full capacity."""
    capacity, transfers = plan
    sim = Simulator()
    link = FairShareLink(sim, capacity=capacity)
    records = []

    def proc(start, size):
        yield sim.timeout(start)
        t0 = sim.now
        yield link.transfer(size)
        records.append((size, sim.now - t0))

    for start, size in transfers:
        sim.process(proc(start, size))
    sim.run()
    for size, elapsed in records:
        assert elapsed >= size / capacity - 1e-6


@given(transfer_plans())
@settings(max_examples=40, deadline=None)
def test_link_makespan_at_least_serial_bound(plan):
    """The last completion cannot beat total_bytes / capacity from t=0."""
    capacity, transfers = plan
    sim = Simulator()
    link = FairShareLink(sim, capacity=capacity)

    def proc(start, size):
        yield sim.timeout(start)
        yield link.transfer(size)

    for start, size in transfers:
        sim.process(proc(start, size))
    end = sim.run()
    total = sum(size for _, size in transfers)
    earliest = min(start for start, _ in transfers)
    assert end >= earliest + total / capacity - 1e-6


# ---------------------------------------------------------------------------
# CorePool invariants
# ---------------------------------------------------------------------------


@given(
    capacity=st.integers(min_value=1, max_value=8),
    holds=st.lists(
        st.floats(min_value=0.1, max_value=10.0, allow_nan=False),
        min_size=1,
        max_size=30,
    ),
)
@settings(max_examples=60, deadline=None)
def test_core_pool_never_exceeds_capacity(capacity, holds):
    sim = Simulator()
    pool = CorePool(sim, capacity)
    peak = [0]

    def proc(hold):
        yield pool.acquire()
        peak[0] = max(peak[0], pool.busy)
        yield sim.timeout(hold)
        pool.release()

    for hold in holds:
        sim.process(proc(hold))
    sim.run()
    assert peak[0] <= capacity
    assert pool.busy == 0
    # Busy-time integral equals the sum of hold times (full utilisation
    # accounting, no lost or double-counted core-seconds).
    assert pool.log.integrate(sim.now) == pytest.approx(sum(holds), rel=1e-9)


@given(
    capacity=st.integers(min_value=1, max_value=4),
    n_jobs=st.integers(min_value=1, max_value=25),
)
@settings(max_examples=40, deadline=None)
def test_core_pool_equal_jobs_finish_in_fifo_batches(capacity, n_jobs):
    sim = Simulator()
    pool = CorePool(sim, capacity)
    order = []

    def proc(i):
        yield pool.acquire()
        yield sim.timeout(1.0)
        pool.release()
        order.append(i)

    for i in range(n_jobs):
        sim.process(proc(i))
    sim.run()
    assert order == sorted(order)
    assert sim.now == pytest.approx(np.ceil(n_jobs / capacity))


# ---------------------------------------------------------------------------
# SegmentLog invariants
# ---------------------------------------------------------------------------


@given(
    points=st.lists(
        st.tuples(
            st.floats(min_value=0.001, max_value=5.0, allow_nan=False),
            st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
        ),
        min_size=1,
        max_size=30,
    ),
    dt=st.floats(min_value=0.1, max_value=3.0, allow_nan=False),
)
@settings(max_examples=60, deadline=None)
def test_segment_log_sample_is_consistent_with_integrate(points, dt):
    """Sum of bucket_mean * bucket_width equals the integral."""
    log = SegmentLog(0.0, 0.0)
    t = 0.0
    for gap, value in points:
        t += gap
        log.record(t, value)
    t_end = t + 1.0
    times, means = log.sample(t_end, dt)
    widths = np.diff(np.append(times, t_end))
    assert float(np.dot(means, widths)) == pytest.approx(
        log.integrate(t_end), rel=1e-9, abs=1e-9
    )


@given(
    values=st.lists(
        st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
        min_size=1,
        max_size=20,
    )
)
@settings(max_examples=50, deadline=None)
def test_segment_log_monotone_times(values):
    log = SegmentLog(0.0, 0.0)
    for i, value in enumerate(values):
        log.record(float(i + 1), value)
    assert all(a < b for a, b in zip(log.times, log.times[1:]))
    assert len(log.times) == len(log.values)
