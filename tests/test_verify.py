"""Tests for output-equivalence verification (paper §V.A methodology).

Builds a Montage-shaped workflow whose actions really read and write
files (deterministic byte transforms), runs it through the sequential
reference executor and through the concurrent threaded DEWE v2 system —
with and without fault injection — and compares sizes + MD5s exactly as
the paper compared DEWE v2 against Pegasus.
"""

import hashlib
import threading
from pathlib import Path

import pytest

from repro.dewe import DeweConfig, MasterDaemon, WorkerDaemon, submit_workflow
from repro.dewe.verify import outputs_digest, run_reference, verify_equivalence
from repro.mq import Broker
from repro.workflow import DataFile, Workflow

CFG = DeweConfig(
    default_timeout=5.0,
    master_poll_interval=0.002,
    worker_poll_interval=0.005,
    max_concurrent_jobs=8,
)


def file_workflow(workdir: Path, name: str = "filewf", width: int = 6) -> Workflow:
    """A mosaic-shaped workflow whose jobs hash input files into outputs."""
    wf = Workflow(name)
    (workdir / name).mkdir(parents=True, exist_ok=True)

    def transform(sources, target):
        def run():
            digest = hashlib.sha256()
            for src in sources:
                digest.update((workdir / src).read_bytes())
            (workdir / target).write_bytes(digest.hexdigest().encode() * 8)
        return run

    raw_names = []
    for i in range(width):
        raw = f"{name}/raw_{i}.dat"
        raw_names.append(raw)
        (workdir / raw).write_bytes(f"input-{i}".encode() * 100)

    proj_names = []
    for i in range(width):
        proj = f"{name}/proj_{i}.dat"
        proj_names.append(proj)
        wf.new_job(
            f"project_{i}",
            "project",
            inputs=[DataFile(raw_names[i], 800, "input")],
            outputs=[DataFile(proj, 512)],
            action=transform([raw_names[i]], proj),
        )

    merged = f"{name}/merged.dat"
    wf.new_job(
        "merge",
        "merge",
        inputs=[DataFile(p, 512) for p in proj_names],
        outputs=[DataFile(merged, 512)],
        action=transform(proj_names, merged),
    )
    for i in range(width):
        wf.add_dependency(f"project_{i}", "merge")

    final = f"{name}/final.out"
    wf.new_job(
        "render",
        "render",
        inputs=[DataFile(merged, 512)],
        outputs=[DataFile(final, 512, "output")],
        action=transform([merged], final),
    )
    wf.add_dependency("merge", "render")
    return wf


def run_with_dewe(workdir: Path, name: str, workers: int = 3) -> Workflow:
    wf = file_workflow(workdir, name)
    broker = Broker()
    with MasterDaemon(broker, CFG) as master:
        daemons = [
            WorkerDaemon(broker, config=CFG, name=f"w{k}").start()
            for k in range(workers)
        ]
        submit_workflow(broker, wf)
        assert master.wait(name, timeout=30.0)
        for d in daemons:
            d.stop()
    return wf


def test_reference_executor_runs_in_order(tmp_path):
    wf = file_workflow(tmp_path, "ref")
    executed = run_reference(wf)
    assert executed == len(wf)
    digests = outputs_digest(wf, tmp_path)
    assert set(digests) == {"ref/final.out"}


def test_dewe_matches_reference(tmp_path):
    """The paper's §V.A check: concurrent execution produces outputs
    byte-identical to the trivially correct sequential executor."""
    ref_dir = tmp_path / "reference"
    ref_dir.mkdir()
    ref_wf = file_workflow(ref_dir, "wf")
    run_reference(ref_wf)
    reference = outputs_digest(ref_wf, ref_dir)

    dewe_dir = tmp_path / "dewe"
    dewe_dir.mkdir()
    dewe_wf = run_with_dewe(dewe_dir, "wf")
    candidate = outputs_digest(dewe_wf, dewe_dir)

    assert verify_equivalence(reference, candidate) == []


def test_dewe_matches_reference_under_faults(tmp_path):
    """At-least-once re-execution of idempotent jobs must not change the
    outputs: kill a worker mid-run, let the timeout resubmit, compare."""
    ref_dir = tmp_path / "reference"
    ref_dir.mkdir()
    ref_wf = file_workflow(ref_dir, "wf")
    run_reference(ref_wf)
    reference = outputs_digest(ref_wf, ref_dir)

    fault_dir = tmp_path / "faulty"
    fault_dir.mkdir()
    wf = file_workflow(fault_dir, "wf")
    started = threading.Event()
    # Make one fan job slow enough to be in flight when we kill.
    original_action = wf.job("project_0").action

    def slow_then_run():
        started.set()
        threading.Event().wait(0.15)
        original_action()

    wf.job("project_0").action = slow_then_run

    cfg = DeweConfig(
        default_timeout=0.4,
        master_poll_interval=0.002,
        worker_poll_interval=0.005,
        max_concurrent_jobs=4,
    )
    broker = Broker()
    with MasterDaemon(broker, cfg) as master:
        w1 = WorkerDaemon(broker, config=cfg, name="victim").start()
        submit_workflow(broker, wf)
        assert started.wait(timeout=5.0)
        w1.kill()
        w2 = WorkerDaemon(broker, config=cfg, name="replacement").start()
        assert master.wait("wf", timeout=30.0)
        w2.stop()

    candidate = outputs_digest(wf, fault_dir)
    assert verify_equivalence(reference, candidate) == []


def test_verify_reports_mismatches():
    ref = {"a": (10, "aa"), "b": (20, "bb")}
    same = {"a": (10, "aa"), "b": (20, "bb")}
    assert verify_equivalence(ref, same) == []
    assert verify_equivalence(ref, {"a": (10, "aa")}) == ["b: missing output"]
    problems = verify_equivalence(ref, {"a": (11, "aa"), "b": (20, "xx"),
                                        "c": (1, "cc")})
    assert any("size" in p for p in problems)
    assert any("MD5" in p for p in problems)
    assert any("extra" in p for p in problems)


def test_outputs_digest_missing_file(tmp_path):
    wf = file_workflow(tmp_path, "wf")
    # Outputs were never produced.
    with pytest.raises(FileNotFoundError):
        outputs_digest(wf, tmp_path)
