"""Property-based tests over the simulation engines.

Invariants that must hold for *any* DAG on *any* cluster:

* every job executes (at least) once and the run terminates;
* precedence is never violated;
* the makespan is bounded below by both the critical path and the
  total-work/total-cores bound;
* the pull and scheduling engines agree on *what* ran, differing only in
  cost and timing.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cloud import ClusterSpec
from repro.engines import PullEngine, RunConfig, SchedulingEngine
from repro.generators import random_layered_workflow
from repro.workflow import Ensemble
from repro.workflow.analysis import critical_path


@st.composite
def workloads(draw):
    n_jobs = draw(st.integers(min_value=2, max_value=60))
    n_levels = draw(st.integers(min_value=1, max_value=6))
    fan = draw(st.integers(min_value=1, max_value=4))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    nodes = draw(st.integers(min_value=1, max_value=3))
    return n_jobs, n_levels, fan, seed, nodes


@given(workloads())
@settings(max_examples=25, deadline=None)
def test_pull_engine_invariants(params):
    n_jobs, n_levels, fan, seed, nodes = params
    wf = random_layered_workflow(n_jobs=n_jobs, n_levels=n_levels,
                                 max_fan_in=fan, seed=seed)
    fs = "local" if nodes == 1 else "moosefs"
    spec = ClusterSpec("c3.8xlarge", nodes, filesystem=fs)
    result = PullEngine(spec).run(Ensemble([wf]))

    # Completeness: every job executed exactly once (no faults injected).
    assert result.jobs_executed == n_jobs
    executed = {r.job_id for r in result.records}
    assert executed == set(wf.jobs)

    # Precedence.
    ends = {r.job_id: r.end for r in result.records}
    starts = {r.job_id: r.start for r in result.records}
    for job in wf:
        for parent in job.parents:
            assert ends[parent] <= starts[job.id] + 1e-6

    # Lower bounds.
    cp_length, _ = critical_path(wf)
    total_cores = nodes * 32
    work_bound = wf.total_runtime() / total_cores
    assert result.makespan >= cp_length - 1e-6
    assert result.makespan >= work_bound - 1e-6

    # Accounting: compute seconds equal the workload's CPU demand.
    assert result.total_cpu_seconds() == pytest.approx(
        wf.total_runtime(), rel=1e-6
    )


@given(workloads())
@settings(max_examples=15, deadline=None)
def test_engines_agree_on_what_ran(params):
    n_jobs, n_levels, fan, seed, nodes = params
    wf = random_layered_workflow(n_jobs=n_jobs, n_levels=n_levels,
                                 max_fan_in=fan, seed=seed)
    fs = "local" if nodes == 1 else "moosefs"
    spec = ClusterSpec("c3.8xlarge", nodes, filesystem=fs)
    pull = PullEngine(spec).run(Ensemble([wf]))
    sched = SchedulingEngine(spec).run(Ensemble([wf]))
    assert {r.job_id for r in pull.records} == {r.job_id for r in sched.records}
    # The scheduling engine never beats pulling (its overheads are all
    # non-negative).
    assert sched.makespan >= pull.makespan - 1e-6


@given(
    copies=st.integers(min_value=1, max_value=4),
    interval=st.floats(min_value=0.0, max_value=30.0, allow_nan=False),
    seed=st.integers(min_value=0, max_value=1000),
)
@settings(max_examples=15, deadline=None)
def test_ensemble_spans_respect_submission_times(copies, interval, seed):
    wf = random_layered_workflow(n_jobs=25, n_levels=4, seed=seed)
    ensemble = Ensemble.replicated(wf, copies, interval=interval)
    spec = ClusterSpec("c3.8xlarge", 1, filesystem="local")
    result = PullEngine(spec, RunConfig(record_jobs=False)).run(ensemble)
    for i, (submit_time, member) in enumerate(ensemble):
        start, end = result.workflow_spans[member.name]
        assert start == pytest.approx(submit_time)
        assert end >= start
    assert result.makespan == pytest.approx(
        max(end for _s, end in result.workflow_spans.values())
    )
