"""Tests for homogeneity statistics and the real-system sampler."""

import threading
import time

import pytest

from repro.dewe import DeweConfig, MasterDaemon, WorkerDaemon, submit_workflow
from repro.dewe.sampler import WorkerSampler
from repro.generators import montage_workflow, random_layered_workflow
from repro.mq import Broker
from repro.workflow import Workflow
from repro.workflow.traces import homogeneity_index, task_type_stats

# ---------------------------------------------------------------------------
# Homogeneity statistics (paper §I's premise)
# ---------------------------------------------------------------------------


def test_task_type_stats_montage():
    wf = montage_workflow(degree=1.0)
    stats = task_type_stats(wf)
    assert stats["mProjectPP"].count == 36  # 6x6 grid at degree 1.0
    assert stats["mProjectPP"].runtime_cv == pytest.approx(0.0, abs=1e-12)
    assert stats["mConcatFit"].count == 1
    assert stats["mDiffFit"].total_runtime == pytest.approx(
        stats["mDiffFit"].count * stats["mDiffFit"].runtime_mean
    )


def test_montage_is_homogeneous():
    """The design premise: the bulk of Montage's work sits in armies of
    near-identical short jobs."""
    wf = montage_workflow(degree=2.0, jitter=0.05, seed=1)
    index = homogeneity_index(wf)
    assert index > 0.6


def test_bespoke_workflow_is_not_homogeneous():
    wf = Workflow("bespoke")
    for i in range(8):
        wf.new_job(f"j{i}", f"unique-type-{i}", runtime=10.0 * (i + 1))
    assert homogeneity_index(wf) == 0.0


def test_homogeneity_respects_cv_threshold():
    wf = random_layered_workflow(n_jobs=100, n_levels=2, seed=0)
    # Exponential runtimes per level: CV ~ 1 >> 0.1 -> nothing qualifies.
    assert homogeneity_index(wf, cv_threshold=0.10) == 0.0
    # With a huge threshold everything (with count >= 10) qualifies.
    assert homogeneity_index(wf, cv_threshold=10.0, min_count=1) == pytest.approx(1.0)


def test_homogeneity_validation():
    wf = montage_workflow(degree=0.5)
    with pytest.raises(ValueError):
        homogeneity_index(wf, cv_threshold=-1.0)


def test_homogeneity_empty_work():
    wf = Workflow("zero")
    wf.new_job("a", "t", runtime=0.0)
    assert homogeneity_index(wf) == 0.0


# ---------------------------------------------------------------------------
# WorkerSampler (real threaded system)
# ---------------------------------------------------------------------------


def test_sampler_records_concurrency():
    broker = Broker()
    cfg = DeweConfig(
        default_timeout=10.0, master_poll_interval=0.002,
        worker_poll_interval=0.005, max_concurrent_jobs=4,
    )
    gate = threading.Event()

    def busy():
        gate.wait(timeout=2.0)

    wf = Workflow("sampled")
    for i in range(8):
        wf.new_job(f"j{i}", "t", action=busy)

    with MasterDaemon(broker, cfg) as master:
        worker = WorkerDaemon(broker, config=cfg).start()
        with WorkerSampler([worker], interval=0.01) as sampler:
            submit_workflow(broker, wf)
            time.sleep(0.2)
            gate.set()
            assert master.wait("sampled", timeout=10.0)
        worker.stop()
    assert sampler.peak_concurrency >= 3  # ramped up toward the cap of 4
    assert sampler.peak_concurrency <= 4
    times, totals = sampler.series()
    assert len(times) == len(totals) >= 5
    assert times == sorted(times)


def test_sampler_lifecycle_errors():
    broker = Broker()
    worker = WorkerDaemon(broker)
    with pytest.raises(ValueError):
        WorkerSampler([])
    with pytest.raises(ValueError):
        WorkerSampler([worker], interval=0.0)
    sampler = WorkerSampler([worker], interval=0.01).start()
    with pytest.raises(RuntimeError):
        sampler.start()
    sampler.stop()
