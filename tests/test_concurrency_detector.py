"""The happens-before/lockset race detector: unit, mutation, regression.

Three layers:

* **unit** — hand-built event logs exercising every ordering edge the
  detector knows (fork/join, message, event, lockset exclusion) and the
  predictive property (lock-induced edges do not mask races);
* **mutation** — a clean log is mutated the way real bugs happen (a
  dropped lock, a reordered ack) and the detector must flag exactly the
  seeded defect while staying silent on the clean original;
* **regression** — the real threaded daemons run under the recorder; the
  two races fixed in this package's PR are re-seeded via subclasses and
  pinned by fingerprint, and the *fixed* daemons must report zero races.
"""

import time

import pytest

import repro.analysis.concurrency.recorder as rec_mod
from repro.analysis.concurrency.detector import (
    detect_races,
    race_fingerprint,
    race_report,
)
from repro.analysis.concurrency.events import ConcEvent
from repro.analysis.report import Severity
from repro.dewe import DeweConfig, MasterDaemon, WorkerDaemon, submit_workflow
from repro.mq import Broker
from repro.recovery.checkpoint import MasterCrashModel
from repro.workflow import Workflow

FAST = DeweConfig(
    default_timeout=1.0,
    master_poll_interval=0.002,
    worker_poll_interval=0.005,
    max_concurrent_jobs=8,
)

#: The two historical races this PR fixed, pinned by stable fingerprint
#: (variable + access sites; thread- and line-number-insensitive).
REJECT_RACE = race_fingerprint(
    "master.state",
    ("read", "master.checkpoint"),
    ("write", "master.reject"),
)
COUNTER_RACE = race_fingerprint(
    "worker.progress",
    ("write", "worker.record_outcome"),
    ("write", "worker.record_outcome"),
)

LOCK = ("lock", "l", 1)
VAR = ("var", "x", 1)
CHAN = ("topic", "t", 1)
EVENT = ("event", "e", 1)


def log(*specs):
    """Build a ConcEvent list from (ltid, op, key[, seq_or_site]) tuples."""
    events = []
    for i, spec in enumerate(specs):
        ltid, op, key = spec[0], spec[1], spec[2]
        seq = site = None
        if len(spec) > 3:
            if op in ("send", "recv"):
                seq = spec[3]
            else:
                site = spec[3]
        events.append(ConcEvent(i, ltid, op, key, seq=seq, site=site))
    return events


# ---------------------------------------------------------------------------
# Unit: ordering edges
# ---------------------------------------------------------------------------


def test_unsynchronized_writes_race():
    races = detect_races(
        log((1, "write", VAR, "a"), (2, "write", VAR, "b"))
    )
    assert len(races) == 1
    assert races[0].var == "x"
    assert races[0].fingerprint == race_fingerprint(
        "x", ("write", "a"), ("write", "b")
    )


def test_read_read_never_races():
    races = detect_races(log((1, "read", VAR, "a"), (2, "read", VAR, "b")))
    assert races == []


def test_common_lock_excludes():
    races = detect_races(
        log(
            (1, "acquire", LOCK),
            (1, "write", VAR, "a"),
            (1, "release", LOCK),
            (2, "acquire", LOCK),
            (2, "write", VAR, "b"),
            (2, "release", LOCK),
        )
    )
    assert races == []


def test_disjoint_locks_race():
    other = ("lock", "m", 2)
    races = detect_races(
        log(
            (1, "acquire", LOCK),
            (1, "write", VAR, "a"),
            (1, "release", LOCK),
            (2, "acquire", other),
            (2, "write", VAR, "b"),
            (2, "release", other),
        )
    )
    assert len(races) == 1


def test_lock_edges_do_not_mask_races():
    """The predictive property: an unlocked write stays racy even when
    the recorded schedule orders it through an unrelated lock bounce."""
    races = detect_races(
        log(
            (1, "write", VAR, "unlocked"),
            (1, "acquire", LOCK),
            (1, "release", LOCK),
            (2, "acquire", LOCK),
            (2, "read", VAR, "locked"),
            (2, "release", LOCK),
        )
    )
    assert len(races) == 1
    assert {races[0].a.site, races[0].b.site} == {"unlocked", "locked"}


def test_message_edge_orders():
    races = detect_races(
        log(
            (1, "write", VAR, "w"),
            (1, "send", CHAN, 1),
            (2, "recv", CHAN, 1),
            (2, "read", VAR, "r"),
        )
    )
    assert races == []


def test_event_edge_orders():
    races = detect_races(
        log(
            (1, "write", VAR, "w"),
            (1, "set", EVENT),
            (2, "wait", EVENT),
            (2, "read", VAR, "r"),
        )
    )
    assert races == []


def test_fork_join_orders():
    races = detect_races(
        log(
            (1, "write", VAR, "before"),
            (1, "fork", ("thread", 2)),
            (2, "begin", ("thread", 2)),
            (2, "write", VAR, "child"),
            (2, "end", ("thread", 2)),
            (1, "join", ("thread", 2)),
            (1, "read", VAR, "after"),
        )
    )
    assert races == []


def test_unjoined_child_races_with_parent():
    races = detect_races(
        log(
            (1, "fork", ("thread", 2)),
            (2, "begin", ("thread", 2)),
            (2, "write", VAR, "child"),
            (1, "write", VAR, "parent"),
        )
    )
    assert len(races) == 1


def test_earlier_unlocked_epoch_stays_visible():
    """A later properly-locked access by the same thread must not hide
    its earlier unlocked one (per-lockset epochs)."""
    races = detect_races(
        log(
            (1, "write", VAR, "unlocked"),
            (1, "acquire", LOCK),
            (1, "write", VAR, "locked1"),
            (1, "release", LOCK),
            (2, "acquire", LOCK),
            (2, "write", VAR, "locked2"),
            (2, "release", LOCK),
        )
    )
    assert len(races) == 1
    assert {races[0].a.site, races[0].b.site} == {"unlocked", "locked2"}


def test_fingerprint_is_order_and_thread_insensitive():
    a = race_fingerprint("x", ("write", "s1"), ("read", "s2"))
    b = race_fingerprint("x", ("read", "s2"), ("write", "s1"))
    assert a == b
    assert len(a) == 12
    assert a != race_fingerprint("y", ("write", "s1"), ("read", "s2"))


def test_race_report_renders_rc001():
    races = detect_races(log((1, "write", VAR, "a"), (2, "write", VAR, "b")))
    report = race_report(races)
    assert len(report.errors) == 1
    finding = report.errors[0]
    assert finding.rule == "RC001"
    assert finding.severity is Severity.ERROR
    assert races[0].fingerprint in finding.message
    assert "RC001" in report.render()


# ---------------------------------------------------------------------------
# Mutation: a clean log, broken the way real bugs break
# ---------------------------------------------------------------------------

CLEAN_LOCKED = (
    (1, "acquire", LOCK),
    (1, "write", VAR, "t1"),
    (1, "release", LOCK),
    (2, "acquire", LOCK),
    (2, "write", VAR, "t2"),
    (2, "release", LOCK),
)

CLEAN_MESSAGE = (
    (1, "write", VAR, "produce"),
    (1, "send", CHAN, 1),
    (2, "recv", CHAN, 1),
    (2, "read", VAR, "consume"),
)


def test_mutation_clean_logs_are_silent():
    assert detect_races(log(*CLEAN_LOCKED)) == []
    assert detect_races(log(*CLEAN_MESSAGE)) == []


def test_mutation_dropped_lock_is_flagged():
    """Delete one thread's acquire/release (the 'forgot the lock' bug)."""
    mutated = [
        spec for spec in CLEAN_LOCKED
        if not (spec[0] == 2 and spec[1] in ("acquire", "release"))
    ]
    races = detect_races(log(*mutated))
    assert len(races) == 1
    assert {races[0].a.site, races[0].b.site} == {"t1", "t2"}


def test_mutation_reordered_ack_is_flagged():
    """Move the send after the recv (the ack overtook its message): the
    consumer's read loses its ordering edge to the producer's write."""
    specs = list(CLEAN_MESSAGE)
    send = specs.pop(1)
    specs.append(send)
    races = detect_races(log(*specs))
    assert len(races) == 1
    assert {races[0].a.site, races[0].b.site} == {"produce", "consume"}


# ---------------------------------------------------------------------------
# Regression: the real daemons, clean and re-seeded
# ---------------------------------------------------------------------------


def _noop():
    return None


def test_threaded_daemons_run_clean_under_detector():
    """The fixed master/worker/broker/checkpointer produce zero races."""
    with rec_mod.enabled() as rec:
        broker = Broker()
        wf = Workflow("clean")
        for jid in ("a", "b", "c"):
            wf.new_job(jid, "t", runtime=0.0, action=_noop)
        wf.add_dependency("a", "b")
        wf.add_dependency("b", "c")
        model = MasterCrashModel(checkpoint_interval=0.005)
        with MasterDaemon(broker, FAST) as master, WorkerDaemon(
            broker, config=FAST
        ):
            model.attach(master)
            submit_workflow(broker, wf)
            assert master.wait("clean", timeout=10.0)
            master.checkpoint()
            assert master.dead_letters == []
            assert master.makespan("clean") >= 0.0
            model.detach()
    assert len(rec.events) > 50  # the run really was instrumented
    assert detect_races(rec.events, rec.thread_names) == []


class BuggyMaster(MasterDaemon):
    """Re-seeds the historical bug: ``rejected`` written with no lock."""

    def _reject(self, workflow_name, exc):
        self._trace("write", "master.reject")
        self.rejected[workflow_name] = repr(exc)


def test_detector_flags_unlocked_reject_against_checkpointer():
    with rec_mod.enabled() as rec:
        broker = Broker()
        good = Workflow("good")
        good.new_job("j", "t", action=_noop)
        model = MasterCrashModel(checkpoint_interval=0.005)
        with BuggyMaster(broker, FAST) as master, WorkerDaemon(
            broker, config=FAST
        ):
            model.attach(master)
            submit_workflow(broker, good)
            assert master.wait("good", timeout=10.0)
            dup = Workflow("good")
            dup.new_job("j", "t")
            submit_workflow(broker, dup)
            deadline = time.monotonic() + 5.0
            while "good" not in master.rejected and time.monotonic() < deadline:
                time.sleep(0.005)
            model.detach()
        assert model.checkpoints  # the reader side actually ran
    fingerprints = {
        r.fingerprint for r in detect_races(rec.events, rec.thread_names)
    }
    assert REJECT_RACE in fingerprints


class BuggyWorker(WorkerDaemon):
    """Re-seeds the historical bug: bare ``+=`` from concurrent job threads."""

    def _record_outcome(self, failed):
        self._trace("write", "worker.record_outcome")
        if failed:
            self.jobs_failed += 1
        else:
            self.jobs_completed += 1


def test_detector_flags_bare_counter_increments():
    with rec_mod.enabled() as rec:
        broker = Broker()
        wf = Workflow("wide")
        for i in range(8):
            wf.new_job(f"j{i}", "t", runtime=0.0, action=_noop)
        with MasterDaemon(broker, FAST) as master, BuggyWorker(
            broker, config=FAST
        ):
            submit_workflow(broker, wf)
            assert master.wait("wide", timeout=10.0)
    fingerprints = {
        r.fingerprint for r in detect_races(rec.events, rec.thread_names)
    }
    assert COUNTER_RACE in fingerprints


def test_seeded_fingerprints_are_stable_literals():
    """The pinned fingerprints double as documentation; a change here
    means the access sites moved and every pin must be re-audited."""
    assert REJECT_RACE == "d49f04054ab4"
    assert COUNTER_RACE == "b9811d4e923a"


def test_recorder_env_flag_names():
    assert rec_mod.ENV_FLAG == "REPRO_RACEDETECT"
    assert rec_mod.active() is rec_mod.active()  # idempotent query


def test_enabled_context_restores_previous_recorder():
    before = rec_mod.active()
    with rec_mod.enabled() as rec:
        assert rec_mod.active() is rec
    assert rec_mod.active() is before
