"""Priority topics and live reprioritization (ROADMAP item 2).

Covers the whole stack: the scoring model, the :class:`PriorityStore`
kernel primitive, priority-inversion regressions in all four brokers
(simulated, threaded, both chaos bands, TCP), the master-side rerank
machinery, and FIFO-vs-priority end-to-end runs on a deadline-skewed
ensemble.
"""

import pytest

from repro.cloud import ClusterSpec
from repro.dewe.state import JobStatus, WorkflowState
from repro.engines import PullEngine
from repro.mq import Broker, ChaosBroker, ChaosSimBroker, MessageChaos, SimBroker
from repro.mq.messages import JobDispatch, PriorityUpdate
from repro.mq.priority import (
    PRIORITY_BAND,
    RepriorityPolicy,
    base_band,
    rank_for_sla,
)
from repro.mq.tcpbroker import BrokerServer, RemoteBroker, decode_message, encode_message
from repro.sim import FifoStore, PriorityStore, Simulator
from repro.workflow import Ensemble, Workflow


# ---------------------------------------------------------------------------
# Scoring model
# ---------------------------------------------------------------------------


def test_base_band_orders_sla_ranks():
    gold, silver, best_effort = base_band(0), base_band(1), base_band(2)
    assert gold > silver > best_effort > base_band(None) == 0.0
    assert gold - silver == PRIORITY_BAND


def test_base_band_collapses_deep_ranks():
    assert base_band(3) == base_band(7) == 0.0


def test_rank_for_sla_maps_default_classes():
    assert rank_for_sla("gold") == 0
    assert rank_for_sla("silver") == 1
    assert rank_for_sla("best_effort") == 2
    assert rank_for_sla("") is None
    assert rank_for_sla("mystery-tier") is None


def test_policy_score_combines_cp_slack_and_age():
    policy = RepriorityPolicy(cp_weight=2.0, slack_weight=1.0, aging_rate=0.5)
    assert policy.score(10.0, 4.0, 2.0) == pytest.approx(2 * 10 - 4 + 0.5 * 2)


def test_policy_score_clamped_within_half_band():
    policy = RepriorityPolicy()
    clamp = PRIORITY_BAND / 2.0 - 1.0
    assert policy.score(1e9, 0.0, 0.0) == clamp
    assert policy.score(0.0, 1e9, 0.0) == -clamp


def test_policy_clamp_means_bands_never_invert():
    """A best-effort job at maximal score still ranks below a gold job
    at minimal score — SLA bands are structural, not advisory."""
    policy = RepriorityPolicy()
    best_effort_max = base_band(2) + policy.score(1e9, 0.0, 0.0)
    gold_min = base_band(0) + policy.score(0.0, 1e9, 0.0)
    assert gold_min > best_effort_max


def test_policy_rejects_negative_knobs():
    with pytest.raises(ValueError):
        RepriorityPolicy(cp_weight=-1.0)
    with pytest.raises(ValueError):
        RepriorityPolicy(aging_rate=-0.1)
    with pytest.raises(ValueError):
        RepriorityPolicy(interval=-1.0)


# ---------------------------------------------------------------------------
# PriorityStore (the DES kernel primitive)
# ---------------------------------------------------------------------------


def _drain(store):
    out = []
    while True:
        item = store.pop_nowait()
        if item is None:
            return out
        out.append(item)


def test_store_higher_priority_first():
    store = PriorityStore(Simulator())
    store.put("low", priority=1.0)
    store.put("high", priority=9.0)
    store.put("mid", priority=5.0)
    assert _drain(store) == ["high", "mid", "low"]


def test_store_fifo_tie_break_within_priority():
    store = PriorityStore(Simulator())
    for i in range(5):
        store.put(i, priority=3.0)
    assert _drain(store) == [0, 1, 2, 3, 4]


def test_store_zero_priority_path_matches_fifostore():
    sim = Simulator()
    fifo, prio = FifoStore(sim), PriorityStore(sim)
    for i in range(6):
        fifo.put(i)
        prio.put(i)
    assert fifo.peek_all() == prio.peek_all()
    assert _drain(prio) == [0, 1, 2, 3, 4, 5]


def test_store_negative_priority_sorts_below_default():
    store = PriorityStore(Simulator())
    store.put("demoted", priority=-1.0)
    store.put("normal")
    assert _drain(store) == ["normal", "demoted"]


def test_store_put_hands_to_waiting_getter_directly():
    store = PriorityStore(Simulator())
    event = store.get()
    store.put("x", priority=-100.0)
    assert event.triggered and event.value == "x"
    assert len(store) == 0


def test_store_reprioritize_retags_and_keeps_arrival_order():
    store = PriorityStore(Simulator())
    for name in ("a", "b", "c", "d"):
        store.put(name)
    moved = store.reprioritize(lambda item, meta: item in ("b", "d"), 5.0)
    assert moved == 2
    # b and d jump ahead; within the new level they keep arrival order.
    assert store.peek_all() == ["b", "d", "a", "c"]
    assert _drain(store) == ["b", "d", "a", "c"]


def test_store_reprioritize_same_priority_is_a_noop():
    store = PriorityStore(Simulator())
    store.put("a", priority=2.0)
    assert store.reprioritize(lambda item, meta: True, 2.0) == 0
    assert store.peek_all() == ["a"]


def test_store_snapshot_exposes_seq_and_meta():
    store = PriorityStore(Simulator())
    store.put("a", priority=1.0, meta=("k", "tag"))
    store.put("b", priority=9.0)
    snap = store.snapshot()
    assert [(item, meta) for _seq, item, meta in snap] == [
        ("b", None), ("a", ("k", "tag")),
    ]
    seqs = [seq for seq, _item, _meta in snap]
    assert len(set(seqs)) == 2


def test_store_remove_by_seq():
    store = PriorityStore(Simulator())
    store.put("a")
    store.put("b", priority=4.0)
    seq_a = next(s for s, item, _m in store.snapshot() if item == "a")
    assert store.remove(seq_a)
    assert not store.remove(seq_a)  # already dead
    assert _drain(store) == ["b"]


def test_store_compaction_bounds_garbage():
    """A reprioritize-heavy run must not accumulate dead entries without
    bound: after many retags the store still drains correctly and its
    internal containers stay proportional to the live count."""
    store = PriorityStore(Simulator())
    n = 50
    for i in range(n):
        store.put(i, priority=1.0)
    for round_ in range(2, 12):
        store.reprioritize(lambda item, meta: True, float(round_))
    assert len(store) == n
    internal = len(store._heap) + len(store._fifo)
    assert internal < 4 * n
    assert _drain(store) == list(range(n))


def test_store_fifo_only_workload_never_allocates_the_heap():
    """The priority-0.0 fast path: a workload that never names a
    priority stays in plain mode — raw items, no entry records, no heap
    — through arbitrary put/get/pop interleavings."""
    store = PriorityStore(Simulator())
    waiting = store.get()  # empty-store getter, handed off below
    for i in range(50):
        store.put(i)
    assert waiting.value == 0
    assert store.pop_nowait() == 1
    got = store.get()
    assert got.value == 2
    assert store._plain  # never left the fast path
    assert store._heap == []  # the heap lane was never populated
    assert all(not hasattr(item, "alive") for item in store._fifo)
    assert _drain(store) == list(range(3, 50))


def test_store_first_priority_put_materializes_in_arrival_order():
    store = PriorityStore(Simulator())
    for name in ("a", "b", "c"):
        store.put(name)
    store.put("vip", priority=5.0)  # leaves plain mode
    assert not store._plain
    assert _drain(store) == ["vip", "a", "b", "c"]


def test_store_reprioritize_reaches_plain_mode_backlog():
    store = PriorityStore(Simulator())
    for name in ("a", "b", "c"):
        store.put(name)
    assert store.reprioritize(lambda item, meta: item == "c", 9.0) == 1
    assert _drain(store) == ["c", "a", "b"]


def test_store_zero_priority_microbench_parity_with_fifostore():
    """The fast path must price like :class:`FifoStore`: the event-based
    producer/consumer cycle (the broker hot path) may cost at most 10%
    more.  Best-of-N damps scheduler noise on shared runners."""
    import time

    def cycle(cls, n=20000, repeats=5):
        best = float("inf")
        for _ in range(repeats):
            store = cls(Simulator())
            t0 = time.perf_counter()
            for i in range(n):
                store.put(i)
            for _ in range(n):
                store.get()
            best = min(best, time.perf_counter() - t0)
        return best

    fifo = cycle(FifoStore)
    prio = cycle(PriorityStore)
    assert prio <= fifo * 1.10, (
        f"priority-0.0 fast path {prio / fifo:.2f}x of FifoStore"
    )


def test_fifostore_public_inspection_api():
    store = FifoStore(Simulator())
    for i in range(4):
        store.put(i)
    assert store.peek_all() == [0, 1, 2, 3]
    assert store.remove_at(1) == 1
    assert store.pop_nowait() == 0
    assert store.peek_all() == [2, 3]
    assert _drain_fifo(store) == [2, 3]


def _drain_fifo(store):
    out = []
    while True:
        item = store.pop_nowait()
        if item is None:
            return out
        out.append(item)


# ---------------------------------------------------------------------------
# Priority-inversion regressions, one per broker
# ---------------------------------------------------------------------------


def test_simbroker_no_priority_inversion():
    sim = Simulator()
    broker = SimBroker(sim, latency=0.0)
    broker.publish("t", "bulk")
    broker.publish("t", "urgent", priority=10.0)
    got = []

    def consumer():
        for _ in range(2):
            msg = yield broker.consume("t")
            got.append(msg)

    sim.process(consumer())
    sim.run()
    assert got == ["urgent", "bulk"]


def test_simbroker_reprioritize_reaches_in_flight_batch():
    """A reprioritize is broker-side: messages still inside the latency
    window are retagged too, not just already-queued ones."""
    sim = Simulator()
    broker = SimBroker(sim, latency=0.5)
    broker.publish("t", "a")
    broker.publish("t", "b")
    assert broker.reprioritize("t", lambda m: m == "b", 7.0) == 1
    got = []

    def consumer():
        # Start pulling after the latency window so the retag is judged
        # on queue order (a pending get would take the first delivery
        # directly — priority only orders *queued* messages).
        yield sim.timeout(1.0)
        for _ in range(2):
            msg = yield broker.consume("t")
            got.append(msg)

    sim.process(consumer())
    sim.run()
    assert got == ["b", "a"]


def test_threaded_broker_no_priority_inversion():
    broker = Broker()
    broker.publish("t", "bulk")
    broker.publish("t", "urgent", priority=10.0)
    broker.publish("t", "bulk2")
    assert [broker.consume("t") for _ in range(3)] == [
        "urgent", "bulk", "bulk2",
    ]


def test_threaded_broker_reprioritize():
    broker = Broker()
    for name in ("a", "b", "c"):
        broker.publish("t", name)
    assert broker.reprioritize("t", lambda m: m == "c", 5.0) == 1
    assert [broker.consume("t") for _ in range(3)] == ["c", "a", "b"]


def test_chaos_simbroker_zero_band_no_priority_inversion():
    sim = Simulator()
    broker = ChaosSimBroker(sim, MessageChaos(), latency=0.0)
    broker.publish("t", "bulk")
    broker.publish("t", "urgent", priority=10.0)
    got = []

    def consumer():
        for _ in range(2):
            msg = yield broker.consume("t")
            got.append(msg)

    sim.process(consumer())
    sim.run()
    assert got == ["urgent", "bulk"]


def test_chaos_simbroker_delayed_message_keeps_priority():
    sim = Simulator()
    broker = ChaosSimBroker(
        sim, MessageChaos(p_delay=1.0, delay=0.2), latency=0.0
    )
    broker.publish("t", "urgent", priority=10.0)  # delayed by the band
    broker.publish("t", "bulk")
    got = []

    def consumer():
        yield sim.timeout(1.0)  # let the delayed delivery land first
        for _ in range(2):
            msg = yield broker.consume("t")
            got.append(msg)

    sim.process(consumer())
    sim.run()
    assert broker.stats()["delayed"] == 2
    assert got == ["urgent", "bulk"]


def test_chaos_threaded_broker_no_priority_inversion():
    broker = ChaosBroker(MessageChaos())
    broker.publish("t", "bulk")
    broker.publish("t", "urgent", priority=10.0)
    assert [broker.consume("t") for _ in range(2)] == ["urgent", "bulk"]


def test_remote_broker_no_priority_inversion():
    with BrokerServer() as server:
        host, port = server.address
        with RemoteBroker(host, port) as client:
            client.publish("t", JobDispatch("wf", "bulk"))
            client.publish("t", JobDispatch("wf", "urgent"), priority=10.0)
            assert client.consume("t").job_id == "urgent"
            assert client.consume("t").job_id == "bulk"


def test_remote_reprioritize_by_fields():
    """Selectors cannot cross the wire; the TCP protocol addresses
    queued dispatches by (workflow, job) fields instead."""
    with BrokerServer() as server:
        host, port = server.address
        with RemoteBroker(host, port) as client:
            for job_id in ("a", "b", "c"):
                client.publish("t", JobDispatch("wf", job_id))
            assert client.reprioritize("t", 5.0, workflow_name="wf", job_id="c") == 1
            assert [client.consume("t").job_id for _ in range(3)] == [
                "c", "a", "b",
            ]


def test_remote_reprioritize_wildcard_selects_whole_member():
    with BrokerServer() as server:
        host, port = server.address
        with RemoteBroker(host, port) as client:
            client.publish("t", JobDispatch("wf-a", "j1"))
            client.publish("t", JobDispatch("wf-b", "j1"))
            client.publish("t", JobDispatch("wf-b", "j2"))
            # Empty job_id = every queued dispatch of the member.
            assert client.reprioritize("t", 3.0, workflow_name="wf-b") == 2
            order = [client.consume("t").workflow_name for _ in range(3)]
            assert order == ["wf-b", "wf-b", "wf-a"]


def test_priority_update_codec_round_trip():
    msg = PriorityUpdate(
        topic="job-dispatching", workflow_name="wf", job_id="j", priority=2.5
    )
    restored = decode_message(encode_message(msg))
    assert isinstance(restored, PriorityUpdate)
    assert restored == msg


# ---------------------------------------------------------------------------
# Master-side scoring state
# ---------------------------------------------------------------------------


def _chain(name="chain", links=4, runtime=2.0):
    wf = Workflow(name)
    prev = None
    for i in range(links):
        job = wf.new_job(f"link{i}", "chain", runtime=runtime)
        if prev is not None:
            wf.add_dependency(prev.id, job.id)
        prev = job
    return wf


def _wide(name="wide", leaves=6, runtime=1.0):
    wf = Workflow(name)
    for i in range(leaves):
        wf.new_job(f"leaf{i:02d}", "wide", runtime=runtime)
    return wf


def test_skeleton_critical_path():
    wf = _chain(links=4, runtime=2.0)
    cp = wf.skeleton().critical_path()
    assert cp["link0"] == 8.0
    assert cp["link3"] == 2.0
    assert wf.skeleton().critical_path_total() == 8.0


def test_state_queued_jobs_tracks_status():
    state = WorkflowState(_chain(), 60.0)
    assert state.queued_jobs() == []
    state.initial_ready()
    assert state.queued_jobs() == ["link0"]
    state.mark_dispatched("link0", 0.0)
    state.on_running("link0", 1, 0.1)
    assert state.queued_jobs() == []


def test_state_job_priority_scores_cp_slack_and_band():
    policy = RepriorityPolicy()
    state = WorkflowState(_chain(links=4, runtime=2.0), 60.0)
    state.initial_ready()
    state.mark_dispatched("link0", 0.0)
    # At t=0 the root's slack is zero, so its score is its cp-remaining.
    assert state.job_priority("link0", 0.0, policy) == pytest.approx(8.0)
    # Later, the evaporating slack raises urgency 1:1 with elapsed time.
    assert state.job_priority("link0", 3.0, policy) == pytest.approx(11.0)
    # The SLA band rides on top untouched.
    assert state.job_priority(
        "link0", 0.0, policy, base=base_band(0)
    ) == pytest.approx(base_band(0) + 8.0)


def test_state_job_priority_aging_from_first_dispatch():
    policy = RepriorityPolicy(cp_weight=0.0, slack_weight=0.0, aging_rate=2.0)
    state = WorkflowState(_chain(), 60.0)
    state.initial_ready()
    state.mark_dispatched("link0", 5.0)
    assert state.job_priority("link0", 9.0, policy) == pytest.approx(8.0)


# ---------------------------------------------------------------------------
# End-to-end: FIFO vs priority on a deadline-skewed ensemble
# ---------------------------------------------------------------------------


def _skewed_members():
    """Wide members first — FIFO's worst case for the trailing chain."""
    members = [_wide(f"wide-{i}", leaves=20) for i in range(3)]
    members.append(_chain("deadline-chain", links=12, runtime=2.0))
    return members


def _run_skewed(repriority):
    spec = ClusterSpec("m3.2xlarge", 1, filesystem="local")
    members = _skewed_members()
    return PullEngine(spec, repriority=repriority).run(
        Ensemble([wf.relabel(wf.name) for wf in members])
    )


def _chain_start(result):
    return min(
        r.start for r in result.records
        if r.workflow == "deadline-chain" and r.job_id == "link0"
    )


def test_priority_beats_fifo_on_deadline_skew():
    fifo = _run_skewed(None)
    prio = _run_skewed(RepriorityPolicy())
    # The chain's critical-path score pulls its root to the front of the
    # backlog at the first queue pop instead of behind 60 wide jobs.
    assert _chain_start(prio) < _chain_start(fifo) * 0.5
    assert prio.makespan < fifo.makespan
    # The same work ran either way — priority reorders, never drops.
    assert prio.jobs_executed == fifo.jobs_executed == 72


def test_priority_run_is_deterministic():
    policy = RepriorityPolicy(aging_rate=0.25, interval=2.0)
    a = _run_skewed(policy)
    b = _run_skewed(policy)
    assert a.makespan == b.makespan
    assert [
        (r.workflow, r.job_id, r.start, r.end, r.node) for r in a.records
    ] == [(r.workflow, r.job_id, r.start, r.end, r.node) for r in b.records]


def test_aging_leaves_no_job_starved():
    result = _run_skewed(RepriorityPolicy(aging_rate=0.25, interval=2.0))
    for name, counts in result.job_counts.items():
        non_completed = {
            status: n for status, n in counts.items()
            if status != JobStatus.COMPLETED.value and n
        }
        assert non_completed == {}, (name, counts)


def test_priority_run_surfaces_shed_record_drops():
    result = _run_skewed(RepriorityPolicy())
    assert result.liveness_stats["shed_record_drops"] == 0


def test_fifo_run_without_policy_is_unchanged():
    """The priority plane is opt-in: without a policy every publish goes
    out at priority 0.0, which is byte-identical to the seed's FIFO."""
    a = _run_skewed(None)
    b = _run_skewed(None)
    assert a.makespan == b.makespan
    assert a.liveness_stats == {}


# ---------------------------------------------------------------------------
# Threaded daemons under a repriority policy
# ---------------------------------------------------------------------------


def test_threaded_master_reprioritizes_and_completes():
    """The real MasterDaemon with a live policy: SLA bands plus the
    aging sweep, two members, everything settles."""
    from repro.dewe import DeweConfig, MasterDaemon, WorkerDaemon, submit_workflow

    cfg = DeweConfig(
        default_timeout=5.0,
        master_poll_interval=0.002,
        worker_poll_interval=0.005,
        max_concurrent_jobs=2,
    )
    policy = RepriorityPolicy(aging_rate=1.0, interval=0.01)
    broker = Broker()
    with MasterDaemon(broker, cfg, repriority=policy) as master, WorkerDaemon(
        broker, config=cfg
    ):
        submit_workflow(broker, _wide("bulk", leaves=8, runtime=0.0),
                        tenant="t1", sla="best_effort")
        submit_workflow(broker, _chain("urgent", links=3, runtime=0.0),
                        tenant="t2", sla="gold")
        assert master.wait("bulk", timeout=20.0)
        assert master.wait("urgent", timeout=20.0)
        assert master.states["bulk"].is_complete
        assert master.states["urgent"].is_complete
    assert master.dropped_acks == 0
