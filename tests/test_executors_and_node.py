"""Unit tests for executors, node assembly and small leftovers."""

import time

import pytest

from repro.cloud import get_instance_type
from repro.cloud.instances import DiskProfile
from repro.cloud.node import DIRTY_FRACTION, PAGE_CACHE_FRACTION, SimNode
from repro.dewe.executors import CallableExecutor, NullExecutor, SubprocessExecutor
from repro.sim import Simulator
from repro.workflow import Job

# ---------------------------------------------------------------------------
# Executors
# ---------------------------------------------------------------------------


def test_callable_executor_runs_action():
    calls = []
    job = Job("j", "t", action=lambda: calls.append(1))
    CallableExecutor().run(job)
    assert calls == [1]


def test_callable_executor_no_action_is_noop():
    CallableExecutor().run(Job("j", "t"))  # must not raise


def test_null_executor_scales_sleep():
    job = Job("j", "t", runtime=20.0)
    t0 = time.monotonic()
    NullExecutor(time_scale=0.005).run(job)  # 0.1 s
    elapsed = time.monotonic() - t0
    assert elapsed >= 0.08


def test_null_executor_zero_scale_instant():
    job = Job("j", "t", runtime=1e9)
    t0 = time.monotonic()
    NullExecutor().run(job)
    assert time.monotonic() - t0 < 0.05


def test_null_executor_validation():
    with pytest.raises(ValueError):
        NullExecutor(time_scale=-1.0)


def test_subprocess_executor_rejects_callable():
    job = Job("j", "t", action=lambda: None)
    with pytest.raises(TypeError, match="argv list"):
        SubprocessExecutor().run(job)


def test_subprocess_executor_none_action_noop():
    SubprocessExecutor().run(Job("j", "t"))


def test_subprocess_executor_nonzero_exit_raises():
    import subprocess

    job = Job("j", "t", action=["false"])
    with pytest.raises(subprocess.CalledProcessError):
        SubprocessExecutor().run(job)


# ---------------------------------------------------------------------------
# SimNode assembly
# ---------------------------------------------------------------------------


def test_sim_node_resources_match_instance_type():
    sim = Simulator()
    itype = get_instance_type("i2.8xlarge")
    node = SimNode(sim, 3, itype)
    assert node.name == "i2.8xlarge-003"
    assert node.cores.capacity == 32
    assert node.disk.read.capacity == itype.disk.rand_read
    assert node.disk.write.capacity == itype.disk.seq_write
    assert node.nic_in.capacity == pytest.approx(1.25e9)
    assert node.page_cache_bytes == pytest.approx(
        PAGE_CACHE_FRACTION * itype.memory_bytes
    )
    assert node.write_cache.capacity == pytest.approx(
        DIRTY_FRACTION * node.page_cache_bytes
    )


def test_disk_profile_validation():
    with pytest.raises(ValueError):
        DiskProfile(seq_read=0.0, seq_write=1.0, rand_read=1.0, rand_write=1.0)
