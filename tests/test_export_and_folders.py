"""Tests for trace export, workflow folders and interval tuning."""

import json

import pytest

from repro.cloud import ClusterSpec
from repro.dewe import DeweConfig, MasterDaemon, NullExecutor, WorkerDaemon
from repro.dewe.folder import (
    create_workflow_folder,
    load_workflow_folder,
    submit_workflow_folder,
)
from repro.engines import PullEngine
from repro.generators import montage_workflow
from repro.monitor import node_metrics
from repro.monitor.export import ascii_gantt, metrics_to_csv, to_chrome_trace
from repro.mq import Broker
from repro.provision.submission import tune_submission_interval
from repro.workflow import Ensemble
from repro.workflow.serialize import save_dax


@pytest.fixture(scope="module")
def result():
    template = montage_workflow(degree=0.5)
    return PullEngine(ClusterSpec("c3.8xlarge", 1, filesystem="local")).run(
        Ensemble([template])
    )


# ---------------------------------------------------------------------------
# Chrome trace / CSV / ASCII exports
# ---------------------------------------------------------------------------


def test_chrome_trace_structure(result, tmp_path):
    path = tmp_path / "trace.json"
    doc = to_chrome_trace(result, path)
    loaded = json.loads(path.read_text())
    assert loaded["otherData"]["engine"] == "dewe-v2"
    events = [e for e in doc["traceEvents"] if e["ph"] == "X"]
    assert len(events) == len(result.records)
    for ev in events:
        assert ev["dur"] >= 0
        assert ev["ts"] >= 0
        assert 0 <= ev["tid"] < 32
    metadata = [e for e in doc["traceEvents"] if e["ph"] == "M"]
    assert len(metadata) == len(result.cluster.nodes)


def test_chrome_trace_events_sorted_within_track(result):
    doc = to_chrome_trace(result)
    tracks = {}
    for ev in doc["traceEvents"]:
        if ev["ph"] != "X":
            continue
        tracks.setdefault((ev["pid"], ev["tid"]), []).append(ev)
    for events in tracks.values():
        times = [(e["ts"], e["ts"] + e["dur"]) for e in events]
        times.sort()
        for (s1, e1), (s2, _e2) in zip(times, times[1:]):
            assert e1 <= s2 + 1  # microsecond rounding slack


def test_metrics_csv(result, tmp_path):
    metrics = node_metrics(result, 0)
    path = tmp_path / "metrics.csv"
    text = metrics_to_csv(metrics, path)
    lines = text.strip().splitlines()
    assert lines[0] == "time_s,cpu_util_pct,disk_write_mb_s,disk_read_mb_s,threads"
    assert len(lines) == len(metrics.times) + 1
    assert path.exists()


def test_ascii_gantt_renders(result):
    art = ascii_gantt(result, width=60, max_slots=4)
    lines = art.splitlines()
    assert len(lines) > 1
    assert any("#" in line for line in lines[1:])
    assert all(len(line) <= 60 for line in lines)


# ---------------------------------------------------------------------------
# Workflow folders
# ---------------------------------------------------------------------------


def test_folder_round_trip(tmp_path):
    wf = montage_workflow(degree=0.5)
    folder = create_workflow_folder(wf, tmp_path / "wf")
    assert (folder / "workflow.json").exists()
    assert (folder / "bin").is_dir()
    restored = load_workflow_folder(folder)
    assert restored.name == wf.name
    assert len(restored) == len(wf)


def test_folder_dax_fallback(tmp_path):
    wf = montage_workflow(degree=0.5)
    folder = tmp_path / "wf"
    folder.mkdir()
    save_dax(wf, folder / "workflow.dax")
    restored = load_workflow_folder(folder)
    assert len(restored) == len(wf)


def test_folder_errors(tmp_path):
    with pytest.raises(FileNotFoundError, match="not found"):
        load_workflow_folder(tmp_path / "missing")
    empty = tmp_path / "empty"
    empty.mkdir()
    with pytest.raises(FileNotFoundError, match="no DAG file"):
        load_workflow_folder(empty)
    wf = montage_workflow(degree=0.5)
    folder = create_workflow_folder(wf, tmp_path / "wf")
    with pytest.raises(FileExistsError):
        create_workflow_folder(wf, folder)


def test_submit_workflow_folder_end_to_end(tmp_path):
    wf = montage_workflow(degree=0.25)
    folder = create_workflow_folder(wf, tmp_path / "wf")
    broker = Broker()
    cfg = DeweConfig(default_timeout=30.0, max_concurrent_jobs=8)
    with MasterDaemon(broker, cfg) as master, WorkerDaemon(broker, NullExecutor(), cfg):
        name = submit_workflow_folder(broker, folder)
        assert master.wait(name, timeout=30.0)


# ---------------------------------------------------------------------------
# Interval tuning
# ---------------------------------------------------------------------------


def test_tune_submission_interval_finds_minimum():
    template = montage_workflow(degree=1.0)
    spec = ClusterSpec("c3.8xlarge", 1, filesystem="local")
    sweep = tune_submission_interval(template, spec, n_workflows=4)
    assert len(sweep.intervals) == len(sweep.makespans)
    assert sweep.best_makespan == min(sweep.makespans)
    assert sweep.best_makespan <= sweep.batch_makespan
    assert 0.0 <= sweep.speedup_vs_batch < 1.0


def test_tune_submission_interval_custom_grid():
    template = montage_workflow(degree=0.5)
    spec = ClusterSpec("c3.8xlarge", 1, filesystem="local")
    sweep = tune_submission_interval(
        template, spec, n_workflows=3, candidates=(0.0, 5.0, 10.0)
    )
    assert sweep.intervals == [0.0, 5.0, 10.0]


def test_tune_submission_interval_validation():
    template = montage_workflow(degree=0.5)
    spec = ClusterSpec("c3.8xlarge", 1, filesystem="local")
    with pytest.raises(ValueError):
        tune_submission_interval(template, spec, n_workflows=1)
    with pytest.raises(ValueError):
        tune_submission_interval(
            template, spec, n_workflows=3, candidates=(-5.0, 0.0)
        )
