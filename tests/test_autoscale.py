"""Tests for dynamic resource provisioning (paper §V.A.3 extension)."""

import pytest

from repro.cloud import BillingModel, ClusterSpec
from repro.engines import PullEngine, RunConfig
from repro.generators import montage_workflow
from repro.provision import queue_depth_autoscaler
from repro.workflow import Ensemble


def make_engine(autoscaler=None, initially_down=(), nodes=4):
    spec = ClusterSpec("c3.8xlarge", nodes, filesystem="moosefs")
    return PullEngine(
        spec,
        RunConfig(record_jobs=True),
        autoscaler=autoscaler,
        initially_down=initially_down,
    )


@pytest.fixture(scope="module")
def workload():
    return Ensemble.replicated(montage_workflow(degree=1.0), 4)


def test_policy_validation():
    with pytest.raises(ValueError):
        queue_depth_autoscaler(min_nodes=0)
    with pytest.raises(ValueError):
        queue_depth_autoscaler(check_interval=0.0)
    with pytest.raises(ValueError):
        queue_depth_autoscaler(boot_delay=-1.0)


def test_static_run_leases_every_node(workload):
    result = make_engine().run(workload)
    assert set(result.rental_spans) == {0, 1, 2, 3}
    for spans in result.rental_spans.values():
        assert spans == [(0.0, result.makespan)]
    # With full leases elastic_cost equals the static cost.
    assert result.elastic_cost(BillingModel.PER_SECOND) == pytest.approx(
        4 * result.spec.itype.price_per_hour * result.makespan / 3600.0
    )


def test_autoscaler_completes_workload(workload):
    auto = queue_depth_autoscaler(
        min_nodes=1, check_interval=5.0, scale_out_depth=64,
        scale_in_depth=2, boot_delay=10.0,
    )
    result = make_engine(auto, initially_down=(1, 2, 3)).run(workload)
    assert result.jobs_executed >= workload.total_jobs
    assert len(result.workflow_spans) == len(workload)


def test_autoscaler_scales_out_under_load(workload):
    auto = queue_depth_autoscaler(
        min_nodes=1, check_interval=5.0, scale_out_depth=32,
        scale_in_depth=1, boot_delay=5.0,
    )
    result = make_engine(auto, initially_down=(1, 2, 3)).run(workload)
    # The deep stage-1 queue must have triggered extra nodes.
    assert len(result.rental_spans) >= 2
    # Scaled-out nodes really executed jobs.
    nodes_used = {r.node for r in result.records}
    assert len(nodes_used) >= 2


def test_elastic_leases_shorter_than_makespan(workload):
    auto = queue_depth_autoscaler(
        min_nodes=1, check_interval=5.0, scale_out_depth=32,
        scale_in_depth=2, boot_delay=5.0,
    )
    result = make_engine(auto, initially_down=(1, 2, 3)).run(workload)
    extra_nodes = [i for i in result.rental_spans if i != 0]
    assert extra_nodes
    for i in extra_nodes:
        leased = sum(e - s for s, e in result.rental_spans[i])
        assert leased <= result.makespan + 1e-6


def test_elastic_cheaper_per_minute_static_cheaper_wallclock(workload):
    """The paper's prediction: dynamic provisioning pays off under
    charge-by-minute billing; a static fleet is faster but idles."""
    static = make_engine().run(workload)
    auto = queue_depth_autoscaler(
        min_nodes=1, check_interval=5.0, scale_out_depth=64,
        scale_in_depth=2, boot_delay=10.0,
    )
    elastic = make_engine(auto, initially_down=(1, 2, 3)).run(workload)
    assert elastic.elastic_cost(BillingModel.PER_MINUTE) < static.elastic_cost(
        BillingModel.PER_MINUTE
    )
    assert static.makespan <= elastic.makespan


def test_graceful_scale_in_loses_no_jobs(workload):
    """stop_worker drains: no timeout resubmissions should be needed."""
    auto = queue_depth_autoscaler(
        min_nodes=1, check_interval=4.0, scale_out_depth=16,
        scale_in_depth=4, boot_delay=3.0,
    )
    result = make_engine(auto, initially_down=(1, 2, 3)).run(workload)
    assert result.resubmissions == 0
    assert result.jobs_executed == workload.total_jobs
